//! The kernel dispatcher (command processor): assigns workgroups to compute
//! units and drives the kernel progress bar (paper: "By default, we show
//! the progress of GPU kernels in terms of how many blocks have completed
//! execution").

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use akita::{
    trace, CompBase, Component, ComponentState, Ctx, Msg, MsgExt, Port, PortId, ProgressBarId,
    ProgressRegistry, Simulation, TaskId, VTime,
};

use akita_mem::msg::{FlushDoneRsp, FlushReq};

use crate::kernel::Kernel;
use crate::proto::{DispatchWgMsg, KernelDoneMsg, LaunchKernelMsg, WgDoneMsg};

/// Configuration for a [`Dispatcher`].
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct DispatcherConfig {
    /// Maximum concurrent workgroups per CU (must match the CUs' own
    /// limit).
    pub max_wgs_per_cu: usize,
    /// Workgroups dispatched per cycle.
    pub dispatch_width: usize,
    /// Flush every cache between kernels (MGPUSim's coherence-at-kernel-
    /// boundary model). The next kernel launches only after all caches
    /// acknowledge.
    pub flush_between_kernels: bool,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        DispatcherConfig {
            max_wgs_per_cu: 4,
            dispatch_width: 2,
            flush_between_kernels: false,
        }
    }
}

struct KernelExec {
    kernel: Rc<dyn Kernel>,
    total: u64,
    next_wg: u64,
    done: u64,
    inflight: u64,
    bar: Option<ProgressBarId>,
    task: TaskId,
    started_at: VTime,
}

/// A kernel dispatcher component.
pub struct Dispatcher {
    base: CompBase,
    site: trace::SiteId,
    /// Port to/from all compute units.
    pub cu_port: Port,
    /// Port to/from the driver.
    pub driver_port: Port,
    /// Port to/from the caches' control ports (flushes).
    pub ctrl_port: Port,
    cfg: DispatcherConfig,
    cu_dsts: Vec<PortId>,
    cu_by_port: HashMap<PortId, usize>,
    cu_load: Vec<usize>,
    /// Which CU runs each in-flight workgroup.
    wg_cu: HashMap<u64, usize>,
    queue: VecDeque<Rc<dyn Kernel>>,
    current: Option<KernelExec>,
    driver_dst: Option<PortId>,
    progress: Option<ProgressRegistry>,
    pending: Option<Box<dyn Msg>>,
    pending_driver: Option<Box<dyn Msg>>,
    /// Cache control ports to flush between kernels.
    cache_ctrl_dsts: Vec<PortId>,
    /// Flush in progress: requests still to send, acks still expected.
    flush_to_send: Vec<PortId>,
    flush_outstanding: usize,
    kernels_completed: u64,
    flush_rounds: u64,
}

impl Dispatcher {
    /// Creates a dispatcher named `name`.
    pub fn new(sim: &Simulation, name: &str, cfg: DispatcherConfig) -> Self {
        let reg = sim.buffer_registry();
        let cu_port = Port::new(&reg, format!("{name}.CuPort"), 16);
        let driver_port = Port::new(&reg, format!("{name}.DriverPort"), 4);
        let ctrl_port = Port::new(&reg, format!("{name}.CtrlPort"), 16);
        Dispatcher {
            base: CompBase::new("Dispatcher", name),
            site: trace::site(name),
            cu_port,
            driver_port,
            ctrl_port,
            cfg,
            cu_dsts: Vec::new(),
            cu_by_port: HashMap::new(),
            cu_load: Vec::new(),
            wg_cu: HashMap::new(),
            queue: VecDeque::new(),
            current: None,
            driver_dst: None,
            progress: None,
            pending: None,
            pending_driver: None,
            cache_ctrl_dsts: Vec::new(),
            flush_to_send: Vec::new(),
            flush_outstanding: 0,
            kernels_completed: 0,
            flush_rounds: 0,
        }
    }

    /// Registers a compute unit reachable at `dispatch_port_id`, reporting
    /// completions from `done_src` (the same port).
    pub fn add_cu(&mut self, dispatch_port_id: PortId) {
        self.cu_by_port.insert(dispatch_port_id, self.cu_dsts.len());
        self.cu_dsts.push(dispatch_port_id);
        self.cu_load.push(0);
    }

    /// Points completion notices at the driver.
    pub fn set_driver(&mut self, dst: PortId) {
        self.driver_dst = Some(dst);
    }

    /// Registers a cache control port to flush between kernels.
    pub fn add_cache(&mut self, ctrl_port_id: PortId) {
        self.cache_ctrl_dsts.push(ctrl_port_id);
    }

    /// Kernel-boundary flush rounds completed.
    pub fn flush_rounds(&self) -> u64 {
        self.flush_rounds
    }

    /// Attaches a progress registry; each kernel gets its own bar.
    pub fn set_progress(&mut self, progress: ProgressRegistry) {
        self.progress = Some(progress);
    }

    /// Kernels fully completed so far.
    pub fn kernels_completed(&self) -> u64 {
        self.kernels_completed
    }

    /// Progress of the running kernel `(done, inflight, total)`, if any.
    pub fn current_progress(&self) -> Option<(u64, u64, u64)> {
        self.current.as_ref().map(|k| (k.done, k.inflight, k.total))
    }

    fn update_bar(&self) {
        if let (Some(reg), Some(k)) = (&self.progress, &self.current) {
            if let Some(bar) = k.bar {
                reg.update(bar, k.done, k.inflight);
            }
        }
    }

    fn accept_launches(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        while let Some(msg) = self.driver_port.retrieve(ctx) {
            let launch = akita::downcast_msg::<LaunchKernelMsg>(msg)
                .unwrap_or_else(|_| panic!("Dispatcher {}: unexpected message", self.name()));
            self.queue.push_back(launch.kernel);
            progress = true;
        }
        progress
    }

    fn start_next(&mut self, ctx: &Ctx) -> bool {
        if self.current.is_some() {
            return false;
        }
        let Some(kernel) = self.queue.pop_front() else {
            return false;
        };
        let total = kernel.num_workgroups();
        let bar = self
            .progress
            .as_ref()
            .map(|reg| reg.create_bar(format!("kernel {}", kernel.name()), total));
        let task = TaskId::fresh();
        let started_at = ctx.now();
        trace::begin(task, self.site, "kernel", started_at);
        self.current = Some(KernelExec {
            kernel,
            total,
            next_wg: 0,
            done: 0,
            inflight: 0,
            bar,
            task,
            started_at,
        });
        true
    }

    fn collect_completions(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        while let Some(msg) = self.cu_port.retrieve(ctx) {
            let done = akita::downcast_msg::<WgDoneMsg>(msg)
                .unwrap_or_else(|_| panic!("Dispatcher {}: unexpected CU message", self.name()));
            let cu = self
                .wg_cu
                .remove(&done.wg_idx)
                .unwrap_or_else(|| panic!("Dispatcher {}: unknown workgroup", self.name()));
            self.cu_load[cu] -= 1;
            let k = self
                .current
                .as_mut()
                .expect("completion implies a running kernel");
            k.done += 1;
            k.inflight -= 1;
            progress = true;
        }
        if progress {
            self.update_bar();
        }
        progress
    }

    fn dispatch(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        if let Some(msg) = self.pending.take() {
            if let Err(msg) = self.cu_port.send(ctx, msg) {
                self.pending = Some(msg);
                return false;
            }
            progress = true;
        }
        for _ in 0..self.cfg.dispatch_width {
            let Some(k) = self.current.as_mut() else {
                break;
            };
            if k.next_wg >= k.total || self.pending.is_some() {
                break;
            }
            // Least-loaded CU with a free slot.
            let Some((cu, _)) = self
                .cu_load
                .iter()
                .enumerate()
                .filter(|(_, &load)| load < self.cfg.max_wgs_per_cu)
                .min_by_key(|(_, &load)| load)
            else {
                break;
            };
            let wg_idx = k.next_wg;
            let spec = k.kernel.workgroup(wg_idx);
            k.next_wg += 1;
            k.inflight += 1;
            self.cu_load[cu] += 1;
            self.wg_cu.insert(wg_idx, cu);
            let (code, args) = (k.kernel.code_base(), k.kernel.args_base());
            let msg: Box<dyn Msg> = Box::new(
                DispatchWgMsg::new(self.cu_dsts[cu], wg_idx, spec).with_segments(code, args),
            );
            if let Err(m) = self.cu_port.send(ctx, msg) {
                self.pending = Some(m);
            }
            progress = true;
        }
        if progress {
            self.update_bar();
        }
        progress
    }

    /// Drives an in-progress kernel-boundary flush. Returns whether any
    /// progress happened; the kernel completes only after every cache acks.
    fn drive_flush(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        while let Some(&dst) = self.flush_to_send.last() {
            let msg: Box<dyn Msg> = Box::new(FlushReq::new(dst));
            match self.ctrl_port.send(ctx, msg) {
                Ok(()) => {
                    self.flush_to_send.pop();
                    progress = true;
                }
                Err(_) => break,
            }
        }
        while let Some(msg) = self.ctrl_port.retrieve(ctx) {
            assert!(
                (*msg).downcast_ref::<FlushDoneRsp>().is_some(),
                "Dispatcher {}: unexpected control message",
                self.name()
            );
            self.flush_outstanding -= 1;
            progress = true;
        }
        progress
    }

    fn finish_kernel(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        if let Some(msg) = self.pending_driver.take() {
            match self.driver_port.send(ctx, msg) {
                Ok(()) => progress = true,
                Err(msg) => {
                    self.pending_driver = Some(msg);
                    return false;
                }
            }
        }
        // A flush barrier in progress holds the kernel open until done.
        if self.flush_outstanding > 0 || !self.flush_to_send.is_empty() {
            progress |= self.drive_flush(ctx);
            if self.flush_outstanding > 0 || !self.flush_to_send.is_empty() {
                return progress;
            }
            self.flush_rounds += 1;
            return progress | self.complete_kernel(ctx);
        }
        let done = matches!(&self.current, Some(k) if k.done == k.total && k.inflight == 0);
        if !done {
            return progress;
        }
        if self.cfg.flush_between_kernels && !self.cache_ctrl_dsts.is_empty() {
            self.flush_to_send = self.cache_ctrl_dsts.clone();
            self.flush_outstanding = self.cache_ctrl_dsts.len();
            return progress | self.drive_flush(ctx);
        }
        progress | self.complete_kernel(ctx)
    }

    fn complete_kernel(&mut self, ctx: &mut Ctx) -> bool {
        let k = self.current.take().expect("kernel open");
        if let (Some(reg), Some(bar)) = (&self.progress, k.bar) {
            reg.update(bar, k.total, 0);
        }
        trace::complete(
            k.task,
            self.site,
            "kernel",
            trace::Phase::Service,
            k.started_at,
            ctx.now(),
        );
        self.kernels_completed += 1;
        if let Some(dst) = self.driver_dst {
            let msg: Box<dyn Msg> = Box::new(KernelDoneMsg::new(dst));
            if let Err(msg) = self.driver_port.send(ctx, msg) {
                self.pending_driver = Some(msg);
            }
        }
        true
    }
}

impl Component for Dispatcher {
    fn base(&self) -> &CompBase {
        &self.base
    }

    fn base_mut(&mut self) -> &mut CompBase {
        &mut self.base
    }

    fn tick(&mut self, ctx: &mut Ctx) -> bool {
        let _prof = akita::profile::scope("Dispatcher::tick");
        let mut progress = false;
        progress |= self.accept_launches(ctx);
        progress |= self.start_next(ctx);
        progress |= self.collect_completions(ctx);
        progress |= self.dispatch(ctx);
        progress |= self.finish_kernel(ctx);
        progress
    }

    fn state(&self) -> ComponentState {
        let (done, inflight, total) = self.current_progress().unwrap_or((0, 0, 0));
        ComponentState::new()
            .field("kernel_active", self.current.is_some())
            .field("wgs_done", done)
            .field("wgs_inflight", inflight)
            .field("wgs_total", total)
            .container("queued_kernels", self.queue.len(), None)
            .field("kernels_completed", self.kernels_completed)
            .field("flush_outstanding", self.flush_outstanding)
            .field("flush_rounds", self.flush_rounds)
    }
}

impl std::fmt::Debug for Dispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Dispatcher({} active={} queued={})",
            self.name(),
            self.current.is_some(),
            self.queue.len()
        )
    }
}
