//! Integration tests for the GPU platform: kernels run to completion on
//! single- and multi-chiplet machines, RDMA carries remote traffic,
//! progress bars track dispatch, and the driver sequences tasks.

use std::rc::Rc;

use akita::VTime;
use akita_gpu::kernel::{Inst, WavefrontProgram};
use akita_gpu::{GpuConfig, Platform, PlatformConfig, UniformKernel};

fn read_kernel(workgroups: u64, wavefronts: usize, stride: u64, base: u64) -> Rc<UniformKernel> {
    let insts = (0..8)
        .map(|i| Inst::Load(base + i * stride, 4))
        .collect::<Vec<_>>();
    Rc::new(UniformKernel::new(
        "reads",
        workgroups,
        wavefronts,
        WavefrontProgram::new(insts),
    ))
}

#[test]
fn single_chiplet_kernel_completes() {
    let mut p = Platform::build(PlatformConfig {
        gpu: GpuConfig::scaled(4),
        ..PlatformConfig::default()
    });
    p.driver
        .borrow_mut()
        .enqueue_kernel(read_kernel(16, 2, 64, 0x1_0000));
    p.start();
    let summary = p.sim.run();
    assert!(p.driver.borrow().finished(), "driver must drain its queue");
    assert_eq!(p.dispatcher.borrow().kernels_completed(), 1);
    let total_wgs: u64 = p.chiplets[0]
        .cus
        .iter()
        .map(|cu| cu.borrow().stats().2)
        .sum();
    assert_eq!(total_wgs, 16);
    assert!(summary.events > 0);
}

#[test]
fn workgroups_spread_across_cus() {
    let mut p = Platform::build(PlatformConfig {
        gpu: GpuConfig::scaled(4),
        ..PlatformConfig::default()
    });
    p.driver
        .borrow_mut()
        .enqueue_kernel(read_kernel(64, 2, 64, 0));
    p.start();
    p.sim.run();
    let per_cu: Vec<u64> = p.chiplets[0]
        .cus
        .iter()
        .map(|cu| cu.borrow().stats().2)
        .collect();
    assert_eq!(per_cu.iter().sum::<u64>(), 64);
    assert!(
        per_cu.iter().all(|&n| n > 0),
        "every CU must get work: {per_cu:?}"
    );
}

#[test]
fn memory_traffic_reaches_dram_and_caches_filter_it() {
    let mut p = Platform::build(PlatformConfig {
        gpu: GpuConfig::scaled(2),
        ..PlatformConfig::default()
    });
    // All wavefronts read the same 8 lines: massive reuse.
    p.driver
        .borrow_mut()
        .enqueue_kernel(read_kernel(32, 4, 64, 0x4_0000));
    p.start();
    p.sim.run();
    let (dram_reads, _) = p.chiplets[0].dram.borrow().traffic();
    let accesses: u64 = p.chiplets[0]
        .cus
        .iter()
        .map(|cu| cu.borrow().stats().1)
        .sum();
    assert_eq!(accesses, 32 * 4 * 8);
    assert!(
        dram_reads < accesses / 4,
        "caches must filter most traffic: {dram_reads} fetches for {accesses} accesses"
    );
    assert!(dram_reads >= 8, "each distinct line fetched at least once");
}

#[test]
fn progress_bar_tracks_kernel_blocks() {
    let mut p = Platform::build(PlatformConfig {
        gpu: GpuConfig::scaled(2),
        ..PlatformConfig::default()
    });
    p.driver
        .borrow_mut()
        .enqueue_kernel(read_kernel(10, 1, 64, 0));
    p.start();
    p.sim.run();
    let bars = p.progress.snapshot();
    let bar = bars
        .iter()
        .find(|b| b.name.contains("kernel"))
        .expect("kernel bar exists");
    assert_eq!(bar.total, 10);
    assert_eq!(bar.finished, 10);
    assert_eq!(bar.in_progress, 0);
    assert_eq!(bar.not_started(), 0);
}

#[test]
fn memcpy_runs_with_progress_and_takes_time() {
    let mut p = Platform::build(PlatformConfig {
        gpu: GpuConfig::scaled(2),
        ..PlatformConfig::default()
    });
    p.driver.borrow_mut().enqueue_memcpy("input", 64 * 1024);
    p.start();
    p.sim.run();
    assert!(p.driver.borrow().finished());
    assert_eq!(p.driver.borrow().stats().1, 1);
    // 64 KiB at 16 B/cycle = 4096 cycles = 4.096 us.
    assert!(p.sim.now() >= VTime::from_us(4));
    let bars = p.progress.snapshot();
    let bar = bars.iter().find(|b| b.name.contains("memcpy")).unwrap();
    assert_eq!(bar.finished, bar.total);
}

#[test]
fn driver_sequences_copy_then_kernel_then_copy() {
    let mut p = Platform::build(PlatformConfig {
        gpu: GpuConfig::scaled(2),
        ..PlatformConfig::default()
    });
    {
        let mut d = p.driver.borrow_mut();
        d.enqueue_memcpy("h2d", 4096);
        d.enqueue_kernel(read_kernel(4, 1, 64, 0));
        d.enqueue_memcpy("d2h", 4096);
    }
    p.start();
    p.sim.run();
    let d = p.driver.borrow();
    assert!(d.finished());
    assert_eq!(d.stats(), (1, 2));
}

#[test]
fn driver_alloc_maps_pages() {
    let p = Platform::build(PlatformConfig::default());
    let a = p.driver.borrow_mut().alloc(10_000);
    let b = p.driver.borrow_mut().alloc(100);
    assert_ne!(a, b);
    assert!(b >= a + 10_000);
    // 10_000 bytes → 3 pages, 100 bytes → 1 page.
    assert_eq!(p.page_table.mapped_pages(), 4);
}

#[test]
fn multi_chiplet_kernel_completes_and_rdma_carries_traffic() {
    let mut p = Platform::build(PlatformConfig {
        chiplets: 4,
        gpu: GpuConfig::scaled(2),
        ..PlatformConfig::default()
    });
    // Strided reads spanning many 4 KiB chunks: ~75% of addresses are
    // remote to any given chiplet.
    let insts: Vec<Inst> = (0..16).map(|i| Inst::Load(i * 4096, 4)).collect();
    let kernel = Rc::new(UniformKernel::new(
        "strided",
        32,
        2,
        WavefrontProgram::new(insts),
    ));
    p.driver.borrow_mut().enqueue_kernel(kernel);
    p.start();
    p.sim.run();
    assert!(p.driver.borrow().finished(), "multi-chiplet run completes");
    let rdma_out: u64 = p
        .chiplets
        .iter()
        .map(|c| c.rdma.as_ref().unwrap().borrow().traffic().0)
        .sum();
    let rdma_in: u64 = p
        .chiplets
        .iter()
        .map(|c| c.rdma.as_ref().unwrap().borrow().traffic().1)
        .sum();
    assert!(rdma_out > 0, "remote lines must cross the network");
    assert_eq!(rdma_out, rdma_in, "every forwarded request is served");
    // All RDMA transactions drained at the end.
    for c in &p.chiplets {
        assert_eq!(c.rdma.as_ref().unwrap().borrow().transactions(), 0);
    }
}

#[test]
fn slow_network_lengthens_the_run() {
    fn run(net_bandwidth: Option<u64>) -> VTime {
        let mut p = Platform::build(PlatformConfig {
            chiplets: 2,
            net_bandwidth,
            gpu: GpuConfig::scaled(2),
            ..PlatformConfig::default()
        });
        let insts: Vec<Inst> = (0..32).map(|i| Inst::Load(i * 4096, 64)).collect();
        let kernel = Rc::new(UniformKernel::new(
            "strided",
            16,
            2,
            WavefrontProgram::new(insts),
        ));
        p.driver.borrow_mut().enqueue_kernel(kernel);
        p.start();
        p.sim.run();
        assert!(p.driver.borrow().finished());
        p.sim.now()
    }
    let fast = run(None);
    let slow = run(Some(500_000_000)); // 0.5 GB/s links
    assert!(
        slow > fast,
        "a slower chiplet network must slow the kernel: fast={fast}, slow={slow}"
    );
}

#[test]
fn two_kernels_back_to_back() {
    let mut p = Platform::build(PlatformConfig {
        gpu: GpuConfig::scaled(2),
        ..PlatformConfig::default()
    });
    {
        let mut d = p.driver.borrow_mut();
        d.enqueue_kernel(read_kernel(8, 1, 64, 0));
        d.enqueue_kernel(read_kernel(8, 1, 64, 0x10_0000));
    }
    p.start();
    p.sim.run();
    assert_eq!(p.dispatcher.borrow().kernels_completed(), 2);
    assert!(p.driver.borrow().finished());
}

#[test]
fn compute_only_kernel_needs_no_memory() {
    let mut p = Platform::build(PlatformConfig {
        gpu: GpuConfig::scaled(2),
        ..PlatformConfig::default()
    });
    let kernel = Rc::new(UniformKernel::new(
        "compute",
        4,
        2,
        WavefrontProgram::new(vec![Inst::Compute(100)]),
    ));
    p.driver.borrow_mut().enqueue_kernel(kernel);
    p.start();
    p.sim.run();
    assert!(p.driver.borrow().finished());
    let (_, reads_writes) = p.chiplets[0].dram.borrow().traffic();
    assert_eq!(reads_writes, 0);
    assert_eq!(p.chiplets[0].dram.borrow().traffic().0, 0);
}

#[test]
fn r9_nano_config_builds() {
    let p = Platform::build(PlatformConfig {
        gpu: GpuConfig::r9_nano(),
        ..PlatformConfig::default()
    });
    assert_eq!(p.num_cus(), 64);
    // 64 CU chains × 4 components + L2s + DRAM + dispatcher + driver + conns.
    assert!(p.sim.component_count() > 64 * 5);
}

#[test]
fn barriers_synchronize_wavefronts_within_a_workgroup() {
    // Two wavefronts: one fast (compute 1), one slow (compute 200), then a
    // barrier, then one load each. Without the barrier the fast wavefront
    // would finish its load ~200 cycles before the slow one even reaches
    // it; with the barrier both issue after the slow compute completes, so
    // the whole workgroup takes at least the slow path.
    use akita_gpu::kernel::Kernel;

    #[derive(Debug)]
    struct TwoSpeed;
    impl Kernel for TwoSpeed {
        fn name(&self) -> &str {
            "two-speed"
        }
        fn num_workgroups(&self) -> u64 {
            1
        }
        fn workgroup(&self, _idx: u64) -> akita_gpu::WorkGroupSpec {
            akita_gpu::WorkGroupSpec {
                wavefronts: vec![
                    WavefrontProgram::new(vec![
                        Inst::Compute(1),
                        Inst::Barrier,
                        Inst::Load(0x1000, 4),
                    ]),
                    WavefrontProgram::new(vec![
                        Inst::Compute(200),
                        Inst::Barrier,
                        Inst::Load(0x2000, 4),
                    ]),
                ],
            }
        }
    }

    let mut p = Platform::build(PlatformConfig {
        gpu: GpuConfig::scaled(1),
        ..PlatformConfig::default()
    });
    p.driver.borrow_mut().enqueue_kernel(Rc::new(TwoSpeed));
    p.start();
    p.sim.run();
    assert!(p.driver.borrow().finished(), "barrier must not deadlock");
    // Lower bound: 200 compute cycles (200 ns at 1 GHz) plus the memory
    // round trip (>100 ns DRAM latency).
    assert!(
        p.sim.now() >= VTime::from_ns(300),
        "the fast wavefront must wait at the barrier: finished at {}",
        p.sim.now()
    );
}

#[test]
fn mismatched_barrier_with_finished_wavefront_releases() {
    // One wavefront has a barrier, the other finishes without ever
    // reaching one: finished wavefronts count as arrived, so the barrier
    // releases instead of hanging.
    use akita_gpu::kernel::Kernel;

    #[derive(Debug)]
    struct Mismatch;
    impl Kernel for Mismatch {
        fn name(&self) -> &str {
            "mismatch"
        }
        fn num_workgroups(&self) -> u64 {
            1
        }
        fn workgroup(&self, _idx: u64) -> akita_gpu::WorkGroupSpec {
            akita_gpu::WorkGroupSpec {
                wavefronts: vec![
                    WavefrontProgram::new(vec![Inst::Barrier, Inst::Compute(2)]),
                    WavefrontProgram::new(vec![Inst::Compute(1)]),
                ],
            }
        }
    }

    let mut p = Platform::build(PlatformConfig {
        gpu: GpuConfig::scaled(1),
        ..PlatformConfig::default()
    });
    p.driver.borrow_mut().enqueue_kernel(Rc::new(Mismatch));
    p.start();
    p.sim.run();
    assert!(p.driver.borrow().finished());
}

#[test]
fn frontend_caches_feed_instruction_fetch_and_scalar_loads() {
    let mut gpu = GpuConfig::scaled(4);
    gpu.frontend_caches = true;
    // Two waves of workgroups: the first wave's fetches coalesce on the
    // cold L1I; the second wave hits the warm cache.
    gpu.cu.max_wgs = 2;
    gpu.dispatcher.max_wgs_per_cu = 2;
    let mut p = Platform::build(PlatformConfig {
        gpu,
        ..PlatformConfig::default()
    });
    p.driver
        .borrow_mut()
        .enqueue_kernel(read_kernel(16, 2, 64, 0x1_0000));
    p.start();
    p.sim.run();
    assert!(p.driver.borrow().finished(), "frontend must not deadlock");
    let (ifetches, scalar_loads): (u64, u64) = p.chiplets[0]
        .cus
        .iter()
        .map(|cu| cu.borrow().frontend_stats())
        .fold((0, 0), |(a, b), (c, d)| (a + c, b + d));
    // One scalar load per wavefront: 16 WGs × 2 WFs.
    assert_eq!(scalar_loads, 32);
    // Every wavefront fetched at least one code line.
    assert!(ifetches >= 32, "ifetches: {ifetches}");
    // The L1I exists, is named like the paper's SA members, and soaked up
    // the fetch stream (all wavefronts share the code segment).
    let sim = &mut p.sim;
    let id = sim
        .component_id("GPU[0].SA[0].L1ICache")
        .expect("L1I registered");
    let comp = sim.component(id);
    let state = comp.borrow().state();
    let hits = state.numeric("hits").unwrap();
    let misses = state.numeric("misses").unwrap();
    assert!(hits + misses > 0.0);
    // The first wave's simultaneous fetches coalesce (counted as misses);
    // the later waves find the line resident.
    assert!(
        hits >= 4.0,
        "the second wave must hit the warm L1I: {hits}h/{misses}m"
    );
}

#[test]
fn frontend_slows_execution_realistically_but_completes() {
    // Same kernel with and without the front end: fetch latency must cost
    // some virtual time, not hang or distort the result.
    fn run(frontend: bool) -> akita::VTime {
        let mut gpu = GpuConfig::scaled(2);
        gpu.frontend_caches = frontend;
        let mut p = Platform::build(PlatformConfig {
            gpu,
            ..PlatformConfig::default()
        });
        p.driver
            .borrow_mut()
            .enqueue_kernel(read_kernel(8, 2, 64, 0));
        p.start();
        p.sim.run();
        assert!(p.driver.borrow().finished());
        p.sim.now()
    }
    let bare = run(false);
    let with_fe = run(true);
    assert!(
        with_fe > bare,
        "fetch and kernarg latency must show: bare={bare}, frontend={with_fe}"
    );
}

#[test]
fn dispatcher_balances_load_and_reports_progress_mid_kernel() {
    let mut p = Platform::build(PlatformConfig {
        gpu: GpuConfig::scaled(3), // odd CU count: uneven division
        ..PlatformConfig::default()
    });
    p.driver
        .borrow_mut()
        .enqueue_kernel(read_kernel(40, 2, 64, 0));
    p.start();
    // Step partway and inspect the dispatcher's live progress.
    p.sim.run_until(VTime::from_ns(200));
    let (done, inflight, total) = p
        .dispatcher
        .borrow()
        .current_progress()
        .expect("kernel active");
    assert_eq!(total, 40);
    assert!(inflight > 0, "some workgroups must be resident");
    assert!(done + inflight <= total);
    p.sim.run();
    assert!(p.dispatcher.borrow().current_progress().is_none());
    let per_cu: Vec<u64> = p.chiplets[0]
        .cus
        .iter()
        .map(|cu| cu.borrow().stats().2)
        .collect();
    assert_eq!(per_cu.iter().sum::<u64>(), 40);
    let max = per_cu.iter().max().unwrap();
    let min = per_cu.iter().min().unwrap();
    assert!(
        max - min <= 10,
        "least-loaded dispatch keeps CUs balanced: {per_cu:?}"
    );
}

#[test]
fn kernels_queue_behind_each_other_per_dispatcher() {
    let mut p = Platform::build(PlatformConfig {
        gpu: GpuConfig::scaled(2),
        ..PlatformConfig::default()
    });
    {
        let mut d = p.driver.borrow_mut();
        for _ in 0..3 {
            d.enqueue_kernel(read_kernel(4, 1, 64, 0));
        }
    }
    p.start();
    p.sim.run();
    assert_eq!(p.dispatcher.borrow().kernels_completed(), 3);
    // Three kernel bars, all complete.
    let kernel_bars = p
        .progress
        .snapshot()
        .into_iter()
        .filter(|b| b.name.contains("kernel"))
        .count();
    assert_eq!(kernel_bars, 3);
}

#[test]
fn kernel_boundary_flush_cools_caches_and_writes_back_dirty_lines() {
    fn run(flush: bool) -> (VTime, u64, u64) {
        let mut gpu = GpuConfig::scaled(2);
        gpu.dispatcher.flush_between_kernels = flush;
        let mut p = Platform::build(PlatformConfig {
            gpu,
            ..PlatformConfig::default()
        });
        // Kernel 1 dirties lines in the L2 (stores); kernel 2 re-reads them.
        let store_insts: Vec<Inst> = (0..8).map(|i| Inst::Store(i * 64, 64)).collect();
        let load_insts: Vec<Inst> = (0..8).map(|i| Inst::Load(i * 64, 4)).collect();
        {
            let mut d = p.driver.borrow_mut();
            d.enqueue_kernel(Rc::new(UniformKernel::new(
                "writer",
                4,
                1,
                WavefrontProgram::new(store_insts),
            )));
            d.enqueue_kernel(Rc::new(UniformKernel::new(
                "reader",
                4,
                1,
                WavefrontProgram::new(load_insts),
            )));
        }
        p.start();
        p.sim.run();
        assert!(p.driver.borrow().finished(), "flush barrier must not hang");
        assert_eq!(p.dispatcher.borrow().kernels_completed(), 2);
        let (_, dram_writes) = p.chiplets[0].dram.borrow().traffic();
        let flush_rounds = p.dispatcher.borrow().flush_rounds();
        (p.sim.now(), dram_writes, flush_rounds)
    }
    let (t_no, writes_no, rounds_no) = run(false);
    let (t_flush, writes_flush, rounds_flush) = run(true);
    assert_eq!(rounds_no, 0);
    assert_eq!(rounds_flush, 2, "one flush round per kernel");
    assert!(
        writes_flush > writes_no,
        "flush must push dirty L2 lines to DRAM: {writes_no} vs {writes_flush}"
    );
    assert!(
        t_flush > t_no,
        "flush and cold re-reads must cost virtual time: {t_no} vs {t_flush}"
    );
}

#[test]
fn shared_l2_tlb_serves_l1_tlb_misses() {
    fn run(shared: bool) -> (VTime, Option<(u64, u64)>) {
        let mut gpu = GpuConfig::scaled(4);
        gpu.shared_l2_tlb = shared;
        // Tiny L1 TLBs so misses actually happen.
        gpu.at.tlb_entries = 2;
        let mut p = Platform::build(PlatformConfig {
            gpu,
            ..PlatformConfig::default()
        });
        // Strided reads across many pages.
        let insts: Vec<Inst> = (0..24).map(|i| Inst::Load(i * 4096, 4)).collect();
        let kernel = Rc::new(UniformKernel::new(
            "pages",
            16,
            2,
            WavefrontProgram::new(insts),
        ));
        p.driver.borrow_mut().enqueue_kernel(kernel);
        p.start();
        p.sim.run();
        assert!(p.driver.borrow().finished(), "L2 TLB path must not hang");
        let stats = if shared {
            let id = p.sim.component_id("GPU[0].L2TLB").expect("L2TLB exists");
            let comp = p.sim.component(id);
            let state = comp.borrow().state();
            Some((
                state.numeric("tlb_hits").unwrap() as u64,
                state.numeric("tlb_misses").unwrap() as u64,
            ))
        } else {
            assert!(p.sim.component_id("GPU[0].L2TLB").is_none());
            None
        };
        (p.sim.now(), stats)
    }
    let (_t_fixed, none) = run(false);
    assert!(none.is_none());
    let (_t_shared, stats) = run(true);
    let (hits, misses) = stats.expect("shared mode collects stats");
    assert!(hits + misses > 0, "L1 TLB misses must reach the L2 TLB");
    assert!(
        hits > 0,
        "24 shared pages across 32 wavefronts must hit the shared TLB: {hits}h/{misses}m"
    );
}

/// Full paper-scale machine: 4 chiplets × 64 CUs running im2col with the
/// Case Study 1 parameters. Takes minutes in release mode; run with
/// `cargo test -p akita-gpu --release -- --ignored paper_scale`.
#[test]
#[ignore = "paper-scale run: minutes of wall time, use --release"]
fn paper_scale_mcm_gpu_runs_im2col() {
    use akita_workloads::{Im2col, Workload};
    let mut p = Platform::build(PlatformConfig {
        chiplets: 4,
        gpu: GpuConfig::r9_nano(),
        ..PlatformConfig::default()
    });
    assert_eq!(p.num_cus(), 256);
    let im2col = Im2col {
        batch: 640, // the paper's exact batch size
        ..Im2col::default()
    };
    im2col.enqueue(&mut p.driver.borrow_mut());
    p.start();
    p.sim.run();
    assert!(p.driver.borrow().finished());
}

/// Runs the MCM workload with `threads` parallel workers and returns the
/// committed event log as `(time_ps, seq, component_name)` tuples.
fn mcm_event_log(threads: usize) -> (Vec<(u64, u64, String)>, u64) {
    use akita::{Component, Ev, Hook};

    #[derive(Default)]
    struct LogHook(Vec<(u64, u64, String)>);
    impl Hook for LogHook {
        fn before_event(&mut self, ev: &Ev, component: &dyn Component) {
            self.0
                .push((ev.time.ps(), ev.seq, component.name().to_owned()));
        }
    }

    let mut p = Platform::build(PlatformConfig::mcm(GpuConfig::scaled(2)));
    // Strided reads across the chiplet interleave: every chiplet sees both
    // local and remote (RDMA) traffic.
    p.driver
        .borrow_mut()
        .enqueue_kernel(read_kernel(16, 2, 4096, 0));
    p.start();
    let hook = p.sim.add_hook(LogHook::default());
    p.enable_parallel(threads).expect("enable_parallel");
    let summary = p.sim.run();
    assert!(p.driver.borrow().finished(), "driver must drain its queue");
    let log = std::mem::take(&mut hook.borrow_mut().0);
    (log, summary.events)
}

/// The tentpole determinism guarantee on the paper's Case Study 1 machine:
/// a 4-chiplet MCM-GPU run merges bit-identically at 1 and 4 threads.
#[test]
fn mcm_gpu_parallel_log_bit_identical() {
    let (log1, ev1) = mcm_event_log(1);
    let (log4, ev4) = mcm_event_log(4);
    assert!(ev1 > 0 && !log1.is_empty(), "workload must do work");
    assert_eq!(ev1, ev4, "events_total diverged");
    assert_eq!(log1.len(), log4.len(), "log length diverged");
    for (i, (a, b)) in log1.iter().zip(log4.iter()).enumerate() {
        assert_eq!(a, b, "logs diverge at event {i}");
    }
}

/// The chiplet partition plan groups every component into chiplet[c] or
/// host, and the parallel report reflects that layout.
#[test]
fn mcm_partition_plan_covers_platform() {
    let mut p = Platform::build(PlatformConfig::mcm(GpuConfig::scaled(2)));
    let plan = p.partition_plan().expect("plan");
    assert_eq!(
        plan.partitions(),
        5,
        "4 chiplets + host: {:?}",
        plan.names()
    );
    p.driver
        .borrow_mut()
        .enqueue_kernel(read_kernel(8, 1, 4096, 0));
    p.start();
    p.enable_parallel(4).expect("enable_parallel");
    p.sim.run();
    let report = p.sim.parallel_report().expect("report");
    assert_eq!(report.partitions.len(), 5);
    assert!(report.windows > 0, "run must advance in windows");
    assert!(
        report.lookahead_ps > 0 && report.lookahead_ps <= 5_000,
        "lookahead bounded by the 5 ns control links, got {}",
        report.lookahead_ps
    );
    let host = report
        .partitions
        .iter()
        .find(|part| part.name == "host")
        .expect("host partition");
    assert!(host.components > 0);
}
