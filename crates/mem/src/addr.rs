//! Address arithmetic: cache-line alignment and chiplet interleaving.

use crate::msg::Addr;

/// Default cache line size, in bytes.
pub const CACHE_LINE: u64 = 64;

/// Rounds `addr` down to its cache-line base.
pub fn line_of(addr: Addr) -> Addr {
    addr & !(CACHE_LINE - 1)
}

/// Whether two addresses fall in the same cache line.
pub fn same_line(a: Addr, b: Addr) -> bool {
    line_of(a) == line_of(b)
}

/// Interleaving of a flat physical address space across `units` memory
/// owners (L2 banks, chiplets) at `granularity`-byte boundaries.
///
/// # Examples
///
/// ```
/// use akita_mem::Interleaving;
///
/// let il = Interleaving::new(4, 4096);
/// assert_eq!(il.owner_of(0), 0);
/// assert_eq!(il.owner_of(4096), 1);
/// assert_eq!(il.owner_of(4 * 4096), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interleaving {
    units: u64,
    granularity: u64,
}

impl Interleaving {
    /// Creates an interleaving over `units` owners with `granularity`-byte
    /// chunks.
    ///
    /// # Panics
    ///
    /// Panics when `units` is zero or `granularity` is not a power of two.
    pub fn new(units: u64, granularity: u64) -> Self {
        assert!(units > 0, "need at least one owner");
        assert!(
            granularity.is_power_of_two(),
            "granularity must be a power of two"
        );
        Interleaving { units, granularity }
    }

    /// Number of owners.
    pub fn units(&self) -> u64 {
        self.units
    }

    /// The owner responsible for `addr`.
    pub fn owner_of(&self, addr: Addr) -> u64 {
        (addr / self.granularity) % self.units
    }

    /// The `n`-th address chunk owned by `owner` (for workload generators
    /// that want owner-local or owner-remote access patterns).
    pub fn chunk_base(&self, owner: u64, n: u64) -> Addr {
        assert!(owner < self.units, "owner out of range");
        (n * self.units + owner) * self.granularity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_of(0x12345), 0x12340);
        assert!(same_line(65, 127));
        assert!(!same_line(63, 64));
    }

    #[test]
    fn interleaving_round_robins() {
        let il = Interleaving::new(4, 4096);
        let owners: Vec<u64> = (0..8).map(|i| il.owner_of(i * 4096)).collect();
        assert_eq!(owners, [0, 1, 2, 3, 0, 1, 2, 3]);
        // Within a chunk the owner does not change.
        assert_eq!(il.owner_of(4096 + 4095), 1);
    }

    #[test]
    fn chunk_base_inverts_owner_of() {
        let il = Interleaving::new(3, 1024);
        for owner in 0..3 {
            for n in 0..5 {
                let base = il.chunk_base(owner, n);
                assert_eq!(il.owner_of(base), owner);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_granularity_panics() {
        let _ = Interleaving::new(2, 100);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;

    /// Deterministic xorshift64* generator replacing proptest's runner in
    /// this offline build; cases reproduce exactly across runs.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// chunk_base is injective and owner_of is its left inverse: the
    /// interleaving partitions the address space without overlap.
    #[test]
    fn interleaving_is_a_partition() {
        let mut rng = XorShift(0xA076_1D64_78BD_642F);
        for _case in 0..256 {
            let units = rng.next() % 15 + 1;
            let gran_log = (rng.next() % 10 + 6) as u32;
            let il = Interleaving::new(units, 1 << gran_log);
            let oa = rng.next() % units;
            let ob = rng.next() % units;
            let n_a = rng.next() % 1000;
            let n_b = rng.next() % 1000;
            let a = il.chunk_base(oa, n_a);
            let b = il.chunk_base(ob, n_b);
            assert_eq!(il.owner_of(a), oa);
            assert_eq!(il.owner_of(b), ob);
            if (oa, n_a) != (ob, n_b) {
                assert_ne!(a, b);
            }
        }
    }

    /// Every address inside a chunk shares its base's owner.
    #[test]
    fn owner_is_constant_within_chunk() {
        let mut rng = XorShift(0xE703_7ED1_A0B4_28DB);
        for _case in 0..256 {
            let units = rng.next() % 15 + 1;
            let gran_log = (rng.next() % 10 + 6) as u32;
            let gran = 1u64 << gran_log;
            let il = Interleaving::new(units, gran);
            let base = il.chunk_base(0, rng.next() % 1000);
            let off = rng.next();
            assert_eq!(il.owner_of(base + off % gran), il.owner_of(base));
        }
    }
}
