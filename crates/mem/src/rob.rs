//! The reorder buffer (L1VROB).
//!
//! Sits between a compute unit and the address translator, letting memory
//! responses return out of order downstream while retiring them in order
//! upstream. Its top-port buffer pinned at 8/8 is the first signal of the
//! bottleneck in the paper's Case Study 1 (Fig 3, Fig 5 b/c); the number of
//! transactions *inside* the ROB (70–130 of 128 in the paper) is exposed via
//! [`Component::state`] as `transactions`.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use akita::{
    trace, CompBase, Component, ComponentState, Ctx, Msg, MsgExt, MsgId, Port, PortId, Simulation,
    TaskId, VTime,
};

use crate::msg::{as_response, AccessKind, DataReadyRsp, ReadReq, WriteDoneRsp, WriteReq};
use crate::plumbing::SendQueue;

struct RobEntry {
    up_id: MsgId,
    down_id: MsgId,
    requester: PortId,
    kind: AccessKind,
    size: u32,
    done: bool,
    task: TaskId,
    accepted_at: VTime,
}

/// Configuration for a [`ReorderBuffer`].
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct RobConfig {
    /// Maximum in-flight transactions (paper default: 128).
    pub capacity: usize,
    /// Requests accepted from the top per cycle.
    pub width: usize,
    /// Top-port incoming buffer depth (paper shows 8).
    pub top_buf: usize,
    /// Bottom-port incoming buffer depth.
    pub bottom_buf: usize,
}

impl Default for RobConfig {
    fn default() -> Self {
        RobConfig {
            capacity: 128,
            width: 4,
            top_buf: 8,
            bottom_buf: 8,
        }
    }
}

/// A reorder buffer component.
pub struct ReorderBuffer {
    base: CompBase,
    site: trace::SiteId,
    /// Port facing the compute unit.
    pub top: Port,
    /// Port facing the address translator.
    pub bottom: Port,
    bottom_dst: Option<PortId>,
    cfg: RobConfig,
    entries: VecDeque<RobEntry>,
    pending_down: Option<Box<dyn Msg>>,
    up_queue: SendQueue,
    total_retired: u64,
}

impl ReorderBuffer {
    /// Creates a reorder buffer named `name` (ports register their buffers
    /// under `<name>.TopPort` / `<name>.BottomPort`).
    pub fn new(sim: &Simulation, name: &str, cfg: RobConfig) -> Self {
        let reg = sim.buffer_registry();
        let top = Port::new(&reg, format!("{name}.TopPort"), cfg.top_buf);
        let bottom = Port::new(&reg, format!("{name}.BottomPort"), cfg.bottom_buf);
        let up_queue = SendQueue::new(top.clone(), cfg.width.max(4));
        ReorderBuffer {
            base: CompBase::new("ReorderBuffer", name),
            site: trace::site(name),
            top,
            bottom,
            bottom_dst: None,
            cfg,
            entries: VecDeque::new(),
            pending_down: None,
            up_queue,
            total_retired: 0,
        }
    }

    /// Points the ROB at the next module toward memory (usually the address
    /// translator's top port).
    pub fn set_bottom_dst(&mut self, dst: PortId) {
        self.bottom_dst = Some(dst);
    }

    /// In-flight transactions.
    pub fn transactions(&self) -> usize {
        self.entries.len()
    }

    /// Transactions retired over the component's lifetime.
    pub fn total_retired(&self) -> u64 {
        self.total_retired
    }

    fn retire(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = self.up_queue.flush(ctx);
        while self.up_queue.can_push() {
            match self.entries.front() {
                Some(e) if e.done => {
                    let e = self.entries.pop_front().expect("front checked");
                    let mut rsp: Box<dyn Msg> = match e.kind {
                        AccessKind::Read => {
                            Box::new(DataReadyRsp::new(e.requester, e.up_id, e.size))
                        }
                        AccessKind::Write => Box::new(WriteDoneRsp::new(e.requester, e.up_id)),
                    };
                    rsp.meta_mut().inherit_task(e.task, e.kind.label());
                    trace::complete(
                        e.task,
                        self.site,
                        e.kind.label(),
                        trace::Phase::Service,
                        e.accepted_at,
                        ctx.now(),
                    );
                    self.up_queue.push(rsp);
                    self.total_retired += 1;
                    progress = true;
                }
                _ => break,
            }
        }
        progress |= self.up_queue.flush(ctx);
        progress
    }

    fn collect_responses(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        for _ in 0..self.cfg.width {
            let Some(msg) = self.bottom.retrieve(ctx) else {
                break;
            };
            let (respond_to, _) = as_response(&*msg)
                .unwrap_or_else(|| panic!("ROB {}: unexpected message from below", self.name()));
            let name = self.base.name.clone();
            let entry = self
                .entries
                .iter_mut()
                .find(|e| e.down_id == respond_to)
                .unwrap_or_else(|| panic!("ROB {name}: response {respond_to} matches no entry"));
            entry.done = true;
            progress = true;
        }
        progress
    }

    fn accept_requests(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        if let Some(msg) = self.pending_down.take() {
            if let Err(msg) = self.bottom.send(ctx, msg) {
                self.pending_down = Some(msg);
                return false;
            }
            progress = true;
        }
        let Some(dst) = self.bottom_dst else {
            return progress;
        };
        for _ in 0..self.cfg.width {
            if self.entries.len() >= self.cfg.capacity || self.pending_down.is_some() {
                break;
            }
            let Some(msg) = self.top.retrieve(ctx) else {
                break;
            };
            let down: Box<dyn Msg>;
            let entry;
            if let Some(r) = (*msg).downcast_ref::<ReadReq>() {
                let mut d = ReadReq::new(dst, r.addr, r.size);
                d.meta.inherit_task(r.meta.task, r.meta.task_kind);
                entry = RobEntry {
                    up_id: r.meta.id,
                    down_id: d.meta.id,
                    requester: r.meta.src,
                    kind: AccessKind::Read,
                    size: r.size,
                    done: false,
                    task: r.meta.task,
                    accepted_at: ctx.now(),
                };
                down = Box::new(d);
            } else if let Some(w) = (*msg).downcast_ref::<WriteReq>() {
                let mut d = WriteReq::new(dst, w.addr, w.size);
                d.meta.inherit_task(w.meta.task, w.meta.task_kind);
                entry = RobEntry {
                    up_id: w.meta.id,
                    down_id: d.meta.id,
                    requester: w.meta.src,
                    kind: AccessKind::Write,
                    size: w.size,
                    done: false,
                    task: w.meta.task,
                    accepted_at: ctx.now(),
                };
                down = Box::new(d);
            } else {
                panic!("ROB {}: unexpected message from above", self.name());
            }
            trace::begin(entry.task, self.site, entry.kind.label(), entry.accepted_at);
            self.entries.push_back(entry);
            if let Err(m) = self.bottom.send(ctx, down) {
                self.pending_down = Some(m);
            }
            progress = true;
        }
        progress
    }
}

impl Component for ReorderBuffer {
    fn base(&self) -> &CompBase {
        &self.base
    }

    fn base_mut(&mut self) -> &mut CompBase {
        &mut self.base
    }

    fn tick(&mut self, ctx: &mut Ctx) -> bool {
        let _prof = akita::profile::scope("ReorderBuffer::tick");
        let mut progress = false;
        progress |= self.retire(ctx);
        progress |= self.collect_responses(ctx);
        progress |= self.accept_requests(ctx);
        progress
    }

    fn state(&self) -> ComponentState {
        ComponentState::new()
            .container("transactions", self.entries.len(), Some(self.cfg.capacity))
            .field("total_retired", self.total_retired)
            .field("top_port_pending", self.top.incoming_len())
            .field("retire_queue", self.up_queue.len())
            .field("holding_downstream", self.pending_down.is_some())
    }
}

impl std::fmt::Debug for ReorderBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ReorderBuffer({} {}/{} entries)",
            self.name(),
            self.entries.len(),
            self.cfg.capacity
        )
    }
}
