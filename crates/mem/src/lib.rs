//! # akita-mem — memory hierarchy models
//!
//! The memory subsystem of the MGPUSim-style GPU simulator used by the
//! AkitaRTM reproduction: reorder buffer ([`ReorderBuffer`]), address
//! translation ([`AddressTranslator`], [`Tlb`], [`PageTable`]),
//! write-through L1 ([`L1Cache`]), write-back L2 with a write buffer
//! ([`L2Cache`] — including the deadlock bug of the paper's Case Study 2
//! behind [`L2Config::inject_writeback_deadlock`]), and a [`Dram`]
//! controller.
//!
//! Components chain CU → ROB → AT → L1 → (switch/RDMA) → L2 → DRAM and
//! speak the protocol in [`msg`]: [`ReadReq`]/[`WriteReq`] down,
//! [`DataReadyRsp`]/[`WriteDoneRsp`] up. Routing toward memory is by
//! address via [`LowModuleFinder`]s.

#![warn(missing_docs)]

mod addr;
mod at;
mod cache;
mod directory;
mod dram;
mod l2;
pub mod msg;
mod mshr;
mod plumbing;
mod rob;
mod routing;
mod tlb2;

pub use addr::{line_of, same_line, Interleaving, CACHE_LINE};
pub use at::{AddressTranslator, AtConfig, PageTable, Tlb};
pub use cache::{L1Cache, L1Config};
pub use directory::{Directory, Victim};
pub use dram::{Dram, DramConfig};
pub use l2::{L2Cache, L2Config};
pub use msg::{Addr, DataReadyRsp, ReadReq, WriteDoneRsp, WriteReq};
pub use mshr::{Mshr, MshrEntry, Waiter};
pub use plumbing::SendQueue;
pub use rob::{ReorderBuffer, RobConfig};
pub use routing::{ChipletRouter, InterleavedLowModules, LowModuleFinder, SingleLowModule};
pub use tlb2::{L2Tlb, L2TlbConfig, TranslationReq, TranslationRsp};
