//! The L1 vector cache: write-through, no-write-allocate, MSHR-bounded.
//!
//! Case Study 1 identifies this component's signature bottleneck pattern:
//! its transaction count sits "constantly maxed out at 16" — the MSHR limit.
//! `state()` exposes exactly that `transactions` counter.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

use akita::{
    trace, CompBase, Component, ComponentState, Ctx, Msg, MsgExt, MsgId, Port, PortId, Simulation,
    TaskId, VTime,
};

use crate::addr::{line_of, CACHE_LINE};
use crate::directory::Directory;
use crate::msg::{DataReadyRsp, FlushDoneRsp, FlushReq, ReadReq, WriteDoneRsp, WriteReq};
use crate::mshr::{Mshr, Waiter};
use crate::plumbing::SendQueue;
use crate::routing::LowModuleFinder;

/// Configuration for an [`L1Cache`].
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct L1Config {
    /// Total cache size in bytes (paper: 16 KiB per CU).
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u64,
    /// Hit latency in cycles.
    pub hit_latency: u64,
    /// MSHR entries — bounds outstanding misses (paper: 16).
    pub mshr_entries: usize,
    /// Outstanding write-through writes.
    pub write_slots: usize,
    /// Requests accepted per cycle.
    pub width: usize,
    /// Top-port buffer depth (paper shows 4).
    pub top_buf: usize,
    /// Bottom-port buffer depth.
    pub bottom_buf: usize,
}

impl Default for L1Config {
    fn default() -> Self {
        L1Config {
            size_bytes: 16 * 1024,
            ways: 4,
            hit_latency: 1,
            mshr_entries: 16,
            write_slots: 16,
            width: 2,
            top_buf: 4,
            bottom_buf: 8,
        }
    }
}

struct HitInFlight {
    ready: VTime,
    up_id: MsgId,
    requester: PortId,
    size: u32,
    task: TaskId,
    accepted_at: VTime,
}

/// A write-through L1 cache component.
pub struct L1Cache {
    base: CompBase,
    site: trace::SiteId,
    /// Port facing the address translator.
    pub top: Port,
    /// Port facing the L2 (via switch/RDMA routing).
    pub bottom: Port,
    /// Control port (flush requests from the dispatcher).
    pub ctrl: Port,
    low: Option<Box<dyn LowModuleFinder>>,
    cfg: L1Config,
    dir: Directory,
    mshr: Mshr,
    hit_pipeline: VecDeque<HitInFlight>,
    /// Outstanding write-through writes: downstream id → waiter.
    writes: HashMap<MsgId, Waiter>,
    pending_down: VecDeque<Box<dyn Msg>>,
    up_queue: SendQueue,
    /// In-progress flush: the request to acknowledge once drained.
    flushing: Option<(MsgId, PortId)>,
    pending_ctrl: Option<Box<dyn Msg>>,
    hits: u64,
    misses: u64,
    write_count: u64,
    flushes: u64,
}

impl L1Cache {
    /// Creates an L1 cache named `name`.
    pub fn new(sim: &Simulation, name: &str, cfg: L1Config) -> Self {
        let reg = sim.buffer_registry();
        let top = Port::new(&reg, format!("{name}.TopPort"), cfg.top_buf);
        let bottom = Port::new(&reg, format!("{name}.BottomPort"), cfg.bottom_buf);
        let ctrl = Port::new(&reg, format!("{name}.CtrlPort"), 2);
        let up_queue = SendQueue::new(top.clone(), cfg.width.max(4));
        L1Cache {
            base: CompBase::new("L1Cache", name),
            site: trace::site(name),
            top,
            bottom,
            ctrl,
            low: None,
            dir: Directory::new(cfg.size_bytes, cfg.ways, CACHE_LINE),
            mshr: Mshr::new(cfg.mshr_entries),
            hit_pipeline: VecDeque::new(),
            writes: HashMap::new(),
            pending_down: VecDeque::new(),
            up_queue,
            flushing: None,
            pending_ctrl: None,
            hits: 0,
            misses: 0,
            write_count: 0,
            flushes: 0,
            cfg,
        }
    }

    /// Routes misses and writes toward memory.
    pub fn set_low(&mut self, low: Box<dyn LowModuleFinder>) {
        self.low = Some(low);
    }

    /// In-flight transactions: outstanding misses plus outstanding writes.
    pub fn transactions(&self) -> usize {
        self.mshr.len() + self.writes.len()
    }

    /// Lifetime `(hits, misses)`.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn low_find(&self, addr: u64) -> PortId {
        self.low
            .as_ref()
            .unwrap_or_else(|| panic!("L1 {}: low module not wired", self.base.name))
            .find(addr)
    }

    fn flush_down(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        while let Some(msg) = self.pending_down.pop_front() {
            match self.bottom.send(ctx, msg) {
                Ok(()) => progress = true,
                Err(msg) => {
                    self.pending_down.push_front(msg);
                    break;
                }
            }
        }
        progress
    }

    fn collect_responses(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        let now = ctx.now();
        while self.up_queue.can_push() {
            let Some(msg) = self.bottom.retrieve(ctx) else {
                break;
            };
            if let Some(d) = (*msg).downcast_ref::<DataReadyRsp>() {
                let entry = self.mshr.complete(d.respond_to).unwrap_or_else(|| {
                    panic!(
                        "L1 {}: fill {} matches no MSHR entry",
                        self.name(),
                        d.respond_to
                    )
                });
                // Write-through caches only ever hold clean lines, so the
                // victim needs no write-back.
                let _victim = self.dir.allocate(entry.line);
                let mut waiters = entry.waiters.into_iter();
                // First waiter goes out through the bounded queue checked
                // above; extras may exceed it, so re-check.
                for w in waiters.by_ref() {
                    let mut rsp = DataReadyRsp::new(w.requester, w.req_id, w.size);
                    rsp.meta.inherit_task(w.task, "read");
                    trace::complete(
                        w.task,
                        self.site,
                        "read",
                        trace::Phase::Service,
                        w.accepted_at,
                        now,
                    );
                    self.up_queue.push(Box::new(rsp));
                    if !self.up_queue.can_push() {
                        break;
                    }
                }
                // Any remaining coalesced waiters answer next tick via the
                // hit pipeline (the line is resident now).
                for w in waiters {
                    self.hit_pipeline.push_back(HitInFlight {
                        ready: now + self.base.freq.cycles(self.cfg.hit_latency),
                        up_id: w.req_id,
                        requester: w.requester,
                        size: w.size,
                        task: w.task,
                        accepted_at: w.accepted_at,
                    });
                }
                progress = true;
            } else if let Some(wd) = (*msg).downcast_ref::<WriteDoneRsp>() {
                let w = self.writes.remove(&wd.respond_to).unwrap_or_else(|| {
                    panic!(
                        "L1 {}: write-done {} matches no write",
                        self.name(),
                        wd.respond_to
                    )
                });
                let mut rsp = WriteDoneRsp::new(w.requester, w.req_id);
                rsp.meta.inherit_task(w.task, "write");
                trace::complete(
                    w.task,
                    self.site,
                    "write",
                    trace::Phase::Service,
                    w.accepted_at,
                    now,
                );
                self.up_queue.push(Box::new(rsp));
                progress = true;
            } else {
                panic!("L1 {}: unexpected message from below", self.name());
            }
        }
        progress
    }

    fn drain_hit_pipeline(&mut self, ctx: &mut Ctx) -> bool {
        let now = ctx.now();
        let mut progress = false;
        while self.up_queue.can_push() {
            let Some(head) = self.hit_pipeline.front() else {
                break;
            };
            if head.ready > now {
                let id = self.base.id;
                let t = head.ready;
                ctx.schedule_tick(id, t);
                break;
            }
            let h = self.hit_pipeline.pop_front().expect("front checked");
            let mut rsp = DataReadyRsp::new(h.requester, h.up_id, h.size);
            rsp.meta.inherit_task(h.task, "read");
            trace::complete(
                h.task,
                self.site,
                "read",
                trace::Phase::Service,
                h.accepted_at,
                now,
            );
            self.up_queue.push(Box::new(rsp));
            progress = true;
        }
        progress
    }

    /// Handles flush control traffic. A write-through cache holds no dirty
    /// data, so a flush only needs outstanding transactions to drain before
    /// the whole directory invalidates.
    fn handle_ctrl(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        if let Some(msg) = self.pending_ctrl.take() {
            match self.ctrl.send(ctx, msg) {
                Ok(()) => progress = true,
                Err(msg) => {
                    self.pending_ctrl = Some(msg);
                    return false;
                }
            }
        }
        if self.flushing.is_none() {
            if let Some(msg) = self.ctrl.retrieve(ctx) {
                let req = (*msg)
                    .downcast_ref::<FlushReq>()
                    .unwrap_or_else(|| panic!("L1 {}: unexpected control message", self.name()));
                self.flushing = Some((req.meta.id, req.meta.src));
                progress = true;
            }
        }
        if let Some((req_id, requester)) = self.flushing {
            if self.mshr.is_empty() && self.writes.is_empty() && self.hit_pipeline.is_empty() {
                self.dir.drain_all();
                self.flushes += 1;
                self.flushing = None;
                let rsp: Box<dyn Msg> = Box::new(FlushDoneRsp::new(requester, req_id));
                if let Err(m) = self.ctrl.send(ctx, rsp) {
                    self.pending_ctrl = Some(m);
                }
                progress = true;
            }
        }
        progress
    }

    fn accept_requests(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        let now = ctx.now();
        if self.flushing.is_some() {
            // Drain in peace: no new work during a flush.
            return false;
        }
        for _ in 0..self.cfg.width {
            if self.pending_down.len() >= 4 {
                break;
            }
            // Decide from the head without consuming, so stalls leave the
            // request in the port buffer (visible backpressure).
            enum Action {
                ReadHit,
                ReadCoalesce,
                ReadMiss,
                Write,
                Stall,
            }
            let action = {
                let Some(head) = self.top.peek(|m| {
                    if let Some(r) = m.downcast_ref::<ReadReq>() {
                        Some((true, r.addr))
                    } else {
                        m.downcast_ref::<WriteReq>().map(|w| (false, w.addr))
                    }
                }) else {
                    break;
                };
                let (is_read, addr) =
                    head.unwrap_or_else(|| panic!("L1 {}: unexpected message kind", self.name()));
                if is_read {
                    if self.dir.contains(addr) {
                        Action::ReadHit
                    } else if self.mshr.lookup(addr).is_some() {
                        Action::ReadCoalesce
                    } else if self.mshr.is_full() {
                        Action::Stall
                    } else {
                        Action::ReadMiss
                    }
                } else if self.writes.len() >= self.cfg.write_slots {
                    Action::Stall
                } else {
                    Action::Write
                }
            };
            if matches!(action, Action::Stall) {
                break;
            }
            let msg = self.top.retrieve(ctx).expect("peeked above");
            match action {
                Action::ReadHit => {
                    let r = (*msg).downcast_ref::<ReadReq>().expect("peeked read");
                    self.hits += 1;
                    trace::begin(r.meta.task, self.site, "read", now);
                    self.hit_pipeline.push_back(HitInFlight {
                        ready: now + self.base.freq.cycles(self.cfg.hit_latency),
                        up_id: r.meta.id,
                        requester: r.meta.src,
                        size: r.size,
                        task: r.meta.task,
                        accepted_at: now,
                    });
                }
                Action::ReadCoalesce => {
                    let r = (*msg).downcast_ref::<ReadReq>().expect("peeked read");
                    self.misses += 1;
                    trace::begin(r.meta.task, self.site, "read", now);
                    self.mshr
                        .lookup(r.addr)
                        .expect("coalesce checked")
                        .waiters
                        .push(Waiter {
                            req_id: r.meta.id,
                            requester: r.meta.src,
                            size: r.size,
                            task: r.meta.task,
                            accepted_at: now,
                        });
                }
                Action::ReadMiss => {
                    let r = (*msg).downcast_ref::<ReadReq>().expect("peeked read");
                    self.misses += 1;
                    trace::begin(r.meta.task, self.site, "read", now);
                    let line = line_of(r.addr);
                    let mut down = ReadReq::new(self.low_find(line), line, CACHE_LINE as u32);
                    down.meta.inherit_task(r.meta.task, r.meta.task_kind);
                    self.mshr.allocate(
                        r.addr,
                        down.meta.id,
                        Waiter {
                            req_id: r.meta.id,
                            requester: r.meta.src,
                            size: r.size,
                            task: r.meta.task,
                            accepted_at: now,
                        },
                    );
                    self.pending_down.push_back(Box::new(down));
                }
                Action::Write => {
                    let w = (*msg).downcast_ref::<WriteReq>().expect("peeked write");
                    self.write_count += 1;
                    trace::begin(w.meta.task, self.site, "write", now);
                    // Write-through: update the resident line (stays clean)
                    // and forward the write toward memory.
                    let _present = self.dir.touch(w.addr);
                    let mut down = WriteReq::new(self.low_find(w.addr), w.addr, w.size);
                    down.meta.inherit_task(w.meta.task, w.meta.task_kind);
                    self.writes.insert(
                        down.meta.id,
                        Waiter {
                            req_id: w.meta.id,
                            requester: w.meta.src,
                            size: w.size,
                            task: w.meta.task,
                            accepted_at: now,
                        },
                    );
                    self.pending_down.push_back(Box::new(down));
                }
                Action::Stall => unreachable!(),
            }
            progress = true;
        }
        progress
    }
}

impl Component for L1Cache {
    fn base(&self) -> &CompBase {
        &self.base
    }

    fn base_mut(&mut self) -> &mut CompBase {
        &mut self.base
    }

    fn tick(&mut self, ctx: &mut Ctx) -> bool {
        let _prof = akita::profile::scope("L1Cache::tick");
        let mut progress = false;
        progress |= self.up_queue.flush(ctx);
        progress |= self.flush_down(ctx);
        progress |= self.collect_responses(ctx);
        progress |= self.drain_hit_pipeline(ctx);
        progress |= self.handle_ctrl(ctx);
        progress |= self.accept_requests(ctx);
        progress |= self.up_queue.flush(ctx);
        progress |= self.flush_down(ctx);
        progress
    }

    fn state(&self) -> ComponentState {
        let cap = self.cfg.mshr_entries + self.cfg.write_slots;
        ComponentState::new()
            .container("transactions", self.transactions(), Some(cap))
            .container("mshr", self.mshr.len(), Some(self.cfg.mshr_entries))
            .container(
                "writes_in_flight",
                self.writes.len(),
                Some(self.cfg.write_slots),
            )
            .field("hits", self.hits)
            .field("misses", self.misses)
            .field("write_count", self.write_count)
            .field("flushes", self.flushes)
            .field("flushing", self.flushing.is_some())
    }
}

impl std::fmt::Debug for L1Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "L1Cache({} {} transactions, {}h/{}m)",
            self.name(),
            self.transactions(),
            self.hits,
            self.misses
        )
    }
}
