//! Set-associative cache directory with LRU replacement.

use crate::addr::line_of;
use crate::msg::Addr;

/// One cache line's bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Line {
    tag: Addr,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// What [`Directory::allocate`] displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Victim {
    /// An invalid way was used; nothing was displaced.
    None,
    /// A clean line was silently dropped.
    Clean(Addr),
    /// A dirty line must be written back before reuse.
    Dirty(Addr),
}

/// A set-associative directory tracking which lines a cache holds.
///
/// # Examples
///
/// ```
/// use akita_mem::{Directory, Victim};
///
/// let mut dir = Directory::new(16 * 1024, 4, 64); // 16 KiB, 4-way, 64 B lines
/// assert!(!dir.contains(0x1000));
/// assert_eq!(dir.allocate(0x1000), Victim::None);
/// assert!(dir.contains(0x1000));
/// ```
#[derive(Debug)]
pub struct Directory {
    sets: Vec<Vec<Line>>,
    block_size: u64,
    num_sets: u64,
    clock: u64,
}

impl Directory {
    /// Creates a directory for a cache of `size_bytes` with `ways`
    /// associativity and `block_size`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics when the geometry is inconsistent (size not divisible into
    /// sets, or non-power-of-two set count / block size).
    pub fn new(size_bytes: u64, ways: u64, block_size: u64) -> Self {
        assert!(block_size.is_power_of_two(), "block size must be 2^n");
        assert!(ways > 0 && size_bytes > 0);
        assert_eq!(
            size_bytes % (ways * block_size),
            0,
            "cache size must be a whole number of sets"
        );
        let num_sets = size_bytes / (ways * block_size);
        assert!(num_sets.is_power_of_two(), "set count must be 2^n");
        let line = Line {
            tag: 0,
            valid: false,
            dirty: false,
            last_use: 0,
        };
        Directory {
            sets: vec![vec![line; ways as usize]; num_sets as usize],
            block_size,
            num_sets,
            clock: 0,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// Associativity.
    pub fn ways(&self) -> u64 {
        self.sets[0].len() as u64
    }

    /// Number of valid lines currently held.
    pub fn valid_lines(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|l| l.valid)
            .count()
    }

    fn set_index(&self, addr: Addr) -> usize {
        ((line_of(addr) / self.block_size) % self.num_sets) as usize
    }

    /// Whether the line containing `addr` is present, updating LRU on hit.
    pub fn contains(&mut self, addr: Addr) -> bool {
        self.touch(addr).is_some()
    }

    /// Hit check that also reports dirtiness, updating LRU.
    pub fn touch(&mut self, addr: Addr) -> Option<bool> {
        self.clock += 1;
        let tag = line_of(addr);
        let clock = self.clock;
        let set = self.set_index(addr);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.last_use = clock;
                return Some(line.dirty);
            }
        }
        None
    }

    /// Marks the line containing `addr` dirty; returns whether it was
    /// present.
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        let tag = line_of(addr);
        let set = self.set_index(addr);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.dirty = true;
                return true;
            }
        }
        false
    }

    /// Installs the line containing `addr` (clean), evicting the LRU way.
    ///
    /// Returns what was displaced so write-back caches can schedule the
    /// victim's write-back.
    pub fn allocate(&mut self, addr: Addr) -> Victim {
        self.clock += 1;
        let tag = line_of(addr);
        let clock = self.clock;
        let set_idx = self.set_index(addr);
        let set = &mut self.sets[set_idx];
        // Refresh if already present (fill race after coalesced misses).
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = clock;
            return Victim::None;
        }
        // Prefer an invalid way.
        if let Some(line) = set.iter_mut().find(|l| !l.valid) {
            *line = Line {
                tag,
                valid: true,
                dirty: false,
                last_use: clock,
            };
            return Victim::None;
        }
        // Evict the least recently used way.
        let lru = set.iter_mut().min_by_key(|l| l.last_use).expect("ways > 0");
        let victim = if lru.dirty {
            Victim::Dirty(lru.tag)
        } else {
            Victim::Clean(lru.tag)
        };
        *lru = Line {
            tag,
            valid: true,
            dirty: false,
            last_use: clock,
        };
        victim
    }

    /// What [`Directory::allocate`] *would* displace for `addr`, without
    /// modifying anything. Lets write-back caches stall instead of evicting
    /// when the write-back path is full.
    pub fn peek_victim(&self, addr: Addr) -> Victim {
        let tag = line_of(addr);
        let set = &self.sets[self.set_index(addr)];
        if set.iter().any(|l| l.valid && l.tag == tag) {
            return Victim::None;
        }
        if set.iter().any(|l| !l.valid) {
            return Victim::None;
        }
        let lru = set.iter().min_by_key(|l| l.last_use).expect("ways > 0");
        if lru.dirty {
            Victim::Dirty(lru.tag)
        } else {
            Victim::Clean(lru.tag)
        }
    }

    /// Invalidates every line, returning the addresses of the dirty ones
    /// (for write-back before reuse).
    pub fn drain_all(&mut self) -> Vec<Addr> {
        let mut dirty = Vec::new();
        for set in &mut self.sets {
            for line in set {
                if line.valid && line.dirty {
                    dirty.push(line.tag);
                }
                line.valid = false;
                line.dirty = false;
            }
        }
        dirty.sort_unstable();
        dirty
    }

    /// Drops the line containing `addr`, returning whether it was dirty.
    pub fn invalidate(&mut self, addr: Addr) -> Option<bool> {
        let tag = line_of(addr);
        let set = self.set_index(addr);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.valid = false;
                return Some(line.dirty);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_allocate() {
        let mut d = Directory::new(1024, 2, 64);
        assert_eq!(d.allocate(0x100), Victim::None);
        assert!(d.contains(0x100));
        assert!(d.contains(0x13f)); // same line
        assert!(!d.contains(0x140)); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way, 1 set: 128 B cache with 64 B lines.
        let mut d = Directory::new(128, 2, 64);
        d.allocate(0x000);
        d.allocate(0x040);
        assert!(d.contains(0x000)); // touch A: B becomes LRU
        match d.allocate(0x080) {
            Victim::Clean(tag) => assert_eq!(tag, 0x040),
            v => panic!("expected clean eviction of B, got {v:?}"),
        }
        assert!(d.contains(0x000));
        assert!(!d.contains(0x040));
    }

    #[test]
    fn dirty_victims_are_reported() {
        let mut d = Directory::new(128, 2, 64);
        d.allocate(0x000);
        d.allocate(0x040);
        assert!(d.mark_dirty(0x000));
        assert!(d.contains(0x040)); // A is LRU now, and dirty
        assert_eq!(d.allocate(0x080), Victim::Dirty(0x000));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut d = Directory::new(128, 2, 64);
        d.allocate(0x000);
        d.mark_dirty(0x000);
        assert_eq!(d.invalidate(0x000), Some(true));
        assert_eq!(d.invalidate(0x000), None);
        assert!(!d.contains(0x000));
    }

    #[test]
    fn peek_victim_matches_allocate_without_mutating() {
        let mut d = Directory::new(128, 2, 64);
        assert_eq!(d.peek_victim(0x000), Victim::None); // invalid way free
        d.allocate(0x000);
        d.allocate(0x040);
        d.mark_dirty(0x040);
        assert!(d.contains(0x040)); // 0x000 is LRU and clean
        assert_eq!(d.peek_victim(0x080), Victim::Clean(0x000));
        assert_eq!(d.peek_victim(0x000), Victim::None); // present: no victim
        assert_eq!(d.allocate(0x080), Victim::Clean(0x000));
    }

    #[test]
    fn mark_dirty_on_absent_line_is_false() {
        let mut d = Directory::new(128, 2, 64);
        assert!(!d.mark_dirty(0x500));
    }

    #[test]
    fn allocate_existing_line_is_refresh_not_eviction() {
        let mut d = Directory::new(128, 2, 64);
        d.allocate(0x000);
        d.allocate(0x040);
        assert_eq!(d.allocate(0x000), Victim::None);
        assert_eq!(d.valid_lines(), 2);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        // 2 sets, 1 way each.
        let mut d = Directory::new(128, 1, 64);
        d.allocate(0x000); // set 0
        d.allocate(0x040); // set 1
        assert!(d.contains(0x000));
        assert!(d.contains(0x040));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;

    /// Deterministic xorshift64* generator replacing proptest's runner in
    /// this offline build; cases reproduce exactly across runs.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// The directory never holds more valid lines than its geometry
    /// allows, and a just-allocated line always hits.
    #[test]
    fn capacity_invariant() {
        let mut rng = XorShift(0x853C_49E6_748F_EA9B);
        for _case in 0..32 {
            let len = (rng.next() % 499 + 1) as usize;
            let mut d = Directory::new(4096, 4, 64);
            let max_lines = (4096 / 64) as usize;
            for _ in 0..len {
                let addr = rng.next() % (1 << 20);
                d.allocate(addr);
                assert!(d.contains(addr));
                assert!(d.valid_lines() <= max_lines);
            }
        }
    }

    /// A line stays resident until at least `ways` distinct conflicting
    /// lines are allocated after it.
    #[test]
    fn residency_under_lru() {
        let mut rng = XorShift(0xDA3E_39CB_94B9_5BDB);
        for _case in 0..256 {
            let base = rng.next() % (1 << 16);
            let mut d = Directory::new(8192, 4, 64); // 32 sets, 4 ways
            let set_stride = 32 * 64;
            let line = base & !63;
            d.allocate(line);
            for k in 1..4 {
                d.allocate(line + k * set_stride); // same set, different tags
                assert!(d.contains(line), "evicted after only {k} conflicts");
            }
        }
    }
}
