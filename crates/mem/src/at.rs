//! Address translation: page table, TLB, and the L1VAddrTranslator
//! component that sits between the ROB and the L1 cache.
//!
//! In Case Study 1 the address translator is ruled out as a bottleneck
//! because its transaction count shows "high peaks turning flat within a
//! short duration" — it drains quickly. This component reproduces that
//! behaviour: translations cost one cycle on a TLB hit and a fixed walk
//! latency on a miss, and in-flight transactions are exposed via `state()`.

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::{Mutex, PoisonError};

use serde::{Deserialize, Serialize};

use akita::{
    trace, BufferRegistry, CompBase, Component, ComponentState, Ctx, Msg, MsgExt, MsgId, Port,
    PortId, Simulation, TaskId, VTime,
};

use crate::msg::{as_response, AccessKind, Addr, DataReadyRsp, ReadReq, WriteDoneRsp, WriteReq};
use crate::plumbing::SendQueue;
use crate::routing::LowModuleFinder;
use crate::tlb2::{TranslationReq, TranslationRsp};

/// A shared virtual→physical page table, filled by the driver at allocation
/// time.
///
/// Unmapped addresses translate to themselves (identity), so standalone
/// tests can skip the driver entirely.
///
/// The map sits behind a `Mutex` (not a `RefCell`) because under the
/// parallel engine the driver partition fills the table while chiplet
/// partitions translate through it concurrently.
#[derive(Debug)]
pub struct PageTable {
    page_size: u64,
    map: Mutex<HashMap<u64, u64>>,
}

impl PageTable {
    /// Creates a page table with `page_size`-byte pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two.
    pub fn new(page_size: u64) -> Rc<Self> {
        assert!(page_size.is_power_of_two(), "page size must be 2^n");
        Rc::new(PageTable {
            page_size,
            map: Mutex::new(HashMap::new()),
        })
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Maps virtual page containing `vaddr` to the physical page containing
    /// `paddr`.
    pub fn map_page(&self, vaddr: Addr, paddr: Addr) {
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(vaddr / self.page_size, paddr / self.page_size);
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Translates `vaddr`, falling back to identity for unmapped pages.
    pub fn translate(&self, vaddr: Addr) -> Addr {
        let vpage = vaddr / self.page_size;
        let offset = vaddr % self.page_size;
        match self
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&vpage)
        {
            Some(ppage) => ppage * self.page_size + offset,
            None => vaddr,
        }
    }
}

/// A translation lookaside buffer with LRU replacement.
#[derive(Debug)]
pub struct Tlb {
    capacity: usize,
    entries: HashMap<u64, u64>, // vpage -> last_use
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB holding `capacity` page translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        Tlb {
            capacity,
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `vpage`; records a hit or miss.
    pub fn access(&mut self, vpage: u64) -> bool {
        self.clock += 1;
        if let Some(last) = self.entries.get_mut(&vpage) {
            *last = self.clock;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts `vpage`, evicting the LRU entry when full.
    pub fn insert(&mut self, vpage: u64) {
        self.clock += 1;
        if self.entries.contains_key(&vpage) {
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some((&lru, _)) = self.entries.iter().min_by_key(|(_, &last)| last) {
                self.entries.remove(&lru);
            }
        }
        self.entries.insert(vpage, self.clock);
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB caches no translations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Configuration for an [`AddressTranslator`].
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct AtConfig {
    /// TLB entries.
    pub tlb_entries: usize,
    /// Cycles for a TLB hit.
    pub hit_latency: u64,
    /// Cycles for a page walk on TLB miss.
    pub walk_latency: u64,
    /// Requests accepted per cycle.
    pub width: usize,
    /// Maximum translations in flight.
    pub depth: usize,
    /// Top-port buffer depth.
    pub top_buf: usize,
    /// Bottom-port buffer depth.
    pub bottom_buf: usize,
}

impl Default for AtConfig {
    fn default() -> Self {
        AtConfig {
            tlb_entries: 32,
            hit_latency: 1,
            walk_latency: 40,
            width: 4,
            depth: 16,
            top_buf: 4,
            bottom_buf: 8,
        }
    }
}

struct InFlight {
    ready: VTime,
    kind: AccessKind,
    phys: Addr,
    size: u32,
    up_id: MsgId,
    requester: PortId,
    task: TaskId,
    accepted_at: VTime,
}

/// A request parked while the shared L2 TLB translates its page.
struct WaitingOnTlb {
    kind: AccessKind,
    size: u32,
    up_id: MsgId,
    requester: PortId,
    task: TaskId,
    accepted_at: VTime,
}

/// Bookkeeping for a request forwarded downstream, keyed by the
/// downstream request id.
struct DownEntry {
    requester: PortId,
    up_id: MsgId,
    kind: AccessKind,
    size: u32,
    task: TaskId,
    accepted_at: VTime,
}

/// The address-translation stage (L1VAddrTranslator).
pub struct AddressTranslator {
    base: CompBase,
    site: trace::SiteId,
    /// Port facing the ROB.
    pub top: Port,
    /// Port facing the L1 cache.
    pub bottom: Port,
    /// Port facing the shared L2 TLB. Created by
    /// [`AddressTranslator::set_l2_tlb`] — platforms without an L2 TLB
    /// never materialize it, so it cannot sit around unattached.
    pub tlb_port: Option<Port>,
    /// L1-TLB misses go to this L2 TLB instead of paying the fixed walk
    /// latency, when set.
    l2tlb_dst: Option<PortId>,
    /// Requests awaiting an L2 TLB answer, by translation-request id.
    waiting_tlb: HashMap<MsgId, WaitingOnTlb>,
    pending_tlb: Option<Box<dyn Msg>>,
    low: Option<Box<dyn LowModuleFinder>>,
    page_table: Rc<PageTable>,
    tlb: Tlb,
    cfg: AtConfig,
    pipeline: VecDeque<InFlight>,
    /// Bookkeeping for forwarded requests, by downstream request id.
    down_map: HashMap<MsgId, DownEntry>,
    pending_down: Option<Box<dyn Msg>>,
    up_queue: SendQueue,
    translated: u64,
    /// Pipeline entries still inside their translation-latency window at
    /// the last tick — the AT's *active* work, which drains within a walk
    /// latency of the input stopping (the paper's Fig 5d signature).
    active_translations: usize,
}

impl AddressTranslator {
    /// Creates an address translator named `name`.
    pub fn new(sim: &Simulation, name: &str, page_table: Rc<PageTable>, cfg: AtConfig) -> Self {
        let reg = sim.buffer_registry();
        let top = Port::new(&reg, format!("{name}.TopPort"), cfg.top_buf);
        let bottom = Port::new(&reg, format!("{name}.BottomPort"), cfg.bottom_buf);
        let up_queue = SendQueue::new(top.clone(), cfg.width.max(4));
        AddressTranslator {
            base: CompBase::new("AddressTranslator", name),
            site: trace::site(name),
            top,
            bottom,
            tlb_port: None,
            l2tlb_dst: None,
            waiting_tlb: HashMap::new(),
            pending_tlb: None,
            low: None,
            tlb: Tlb::new(cfg.tlb_entries),
            page_table,
            cfg,
            pipeline: VecDeque::new(),
            down_map: HashMap::new(),
            pending_down: None,
            up_queue,
            translated: 0,
            active_translations: 0,
        }
    }

    /// Routes translated requests toward memory.
    pub fn set_low(&mut self, low: Box<dyn LowModuleFinder>) {
        self.low = Some(low);
    }

    /// Routes L1-TLB misses to a shared L2 TLB instead of the fixed
    /// walk-latency model. Creates and returns the TLB-facing port so the
    /// caller can attach it to the TLB's connection.
    pub fn set_l2_tlb(&mut self, reg: &BufferRegistry, dst: PortId) -> Port {
        self.l2tlb_dst = Some(dst);
        let port = Port::new(reg, format!("{}.TlbPort", self.name()), 4);
        self.tlb_port = Some(port.clone());
        port
    }

    /// Translations that were still inside their latency window at the
    /// last tick — the AT's *active* work. Entries already translated but
    /// blocked on downstream backpressure, and requests awaiting responses,
    /// are not the AT's own backlog (see
    /// [`AddressTranslator::awaiting_response`]).
    pub fn transactions(&self) -> usize {
        self.active_translations
    }

    /// Total entries in the translation pipeline, including translated ones
    /// blocked on downstream backpressure.
    pub fn pipeline_len(&self) -> usize {
        self.pipeline.len()
    }

    /// Forwarded requests whose responses have not returned yet.
    pub fn awaiting_response(&self) -> usize {
        self.down_map.len()
    }

    /// TLB statistics `(hits, misses)`.
    pub fn tlb_stats(&self) -> (u64, u64) {
        (self.tlb.hits(), self.tlb.misses())
    }

    fn pass_responses_up(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = self.up_queue.flush(ctx);
        while self.up_queue.can_push() {
            let Some(msg) = self.bottom.retrieve(ctx) else {
                break;
            };
            let (respond_to, _) = as_response(&*msg)
                .unwrap_or_else(|| panic!("AT {}: unexpected message from below", self.name()));
            let d = self.down_map.remove(&respond_to).unwrap_or_else(|| {
                panic!(
                    "AT {}: response {respond_to} matches no translation",
                    self.name()
                )
            });
            let mut rsp: Box<dyn Msg> = match d.kind {
                AccessKind::Read => Box::new(DataReadyRsp::new(d.requester, d.up_id, d.size)),
                AccessKind::Write => Box::new(WriteDoneRsp::new(d.requester, d.up_id)),
            };
            rsp.meta_mut().inherit_task(d.task, d.kind.label());
            trace::complete(
                d.task,
                self.site,
                d.kind.label(),
                trace::Phase::Service,
                d.accepted_at,
                ctx.now(),
            );
            self.up_queue.push(rsp);
            progress = true;
        }
        progress |= self.up_queue.flush(ctx);
        progress
    }

    fn issue_translated(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        if let Some(msg) = self.pending_down.take() {
            if let Err(msg) = self.bottom.send(ctx, msg) {
                self.pending_down = Some(msg);
                return false;
            }
            progress = true;
        }
        let now = ctx.now();
        while self.pending_down.is_none() {
            let Some(head) = self.pipeline.front() else {
                break;
            };
            if head.ready > now {
                let id = self.base.id;
                let t = head.ready;
                ctx.schedule_tick(id, t);
                break;
            }
            let head = self.pipeline.pop_front().expect("front checked");
            let low = self
                .low
                .as_ref()
                .unwrap_or_else(|| panic!("AT {}: low module not wired", self.base.name));
            let dst = low.find(head.phys);
            let mut down: Box<dyn Msg> = match head.kind {
                AccessKind::Read => Box::new(ReadReq::new(dst, head.phys, head.size)),
                AccessKind::Write => Box::new(WriteReq::new(dst, head.phys, head.size)),
            };
            down.meta_mut().inherit_task(head.task, head.kind.label());
            self.down_map.insert(
                down.meta().id,
                DownEntry {
                    requester: head.requester,
                    up_id: head.up_id,
                    kind: head.kind,
                    size: head.size,
                    task: head.task,
                    accepted_at: head.accepted_at,
                },
            );
            self.translated += 1;
            if let Err(m) = self.bottom.send(ctx, down) {
                self.pending_down = Some(m);
            }
            progress = true;
        }
        progress
    }

    /// Retries a blocked L2 TLB request and admits completed translations
    /// into the issue pipeline.
    fn collect_tlb(&mut self, ctx: &mut Ctx) -> bool {
        let Some(tlb_port) = self.tlb_port.clone() else {
            return false;
        };
        let mut progress = false;
        if let Some(msg) = self.pending_tlb.take() {
            match tlb_port.send(ctx, msg) {
                Ok(()) => progress = true,
                Err(msg) => {
                    self.pending_tlb = Some(msg);
                    return false;
                }
            }
        }
        let now = ctx.now();
        while self.pipeline.len() < self.cfg.depth {
            let Some(msg) = tlb_port.retrieve(ctx) else {
                break;
            };
            let rsp = (*msg)
                .downcast_ref::<TranslationRsp>()
                .unwrap_or_else(|| panic!("AT {}: unexpected TLB message", self.name()));
            let w = self
                .waiting_tlb
                .remove(&rsp.respond_to)
                .unwrap_or_else(|| panic!("AT {}: TLB answer matches nothing", self.name()));
            // Cache the page locally for the next access.
            self.tlb.insert(rsp.paddr / self.page_table.page_size());
            let mut ready = now + self.base.freq.cycles(self.cfg.hit_latency);
            if let Some(last) = self.pipeline.back() {
                ready = ready.max(last.ready);
            }
            self.pipeline.push_back(InFlight {
                ready,
                kind: w.kind,
                phys: rsp.paddr,
                size: w.size,
                up_id: w.up_id,
                requester: w.requester,
                task: w.task,
                accepted_at: w.accepted_at,
            });
            progress = true;
        }
        progress
    }

    fn accept_requests(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        let now = ctx.now();
        for _ in 0..self.cfg.width {
            if self.pipeline.len() >= self.cfg.depth {
                break;
            }
            if self.pending_tlb.is_some() {
                break;
            }
            let Some(msg) = self.top.retrieve(ctx) else {
                break;
            };
            let (kind, vaddr, size, up_id, requester, task) =
                if let Some(r) = (*msg).downcast_ref::<ReadReq>() {
                    (
                        AccessKind::Read,
                        r.addr,
                        r.size,
                        r.meta.id,
                        r.meta.src,
                        r.meta.task,
                    )
                } else if let Some(w) = (*msg).downcast_ref::<WriteReq>() {
                    (
                        AccessKind::Write,
                        w.addr,
                        w.size,
                        w.meta.id,
                        w.meta.src,
                        w.meta.task,
                    )
                } else {
                    panic!("AT {}: unexpected message from above", self.name());
                };
            trace::begin(task, self.site, kind.label(), now);
            let vpage = vaddr / self.page_table.page_size();
            let hit = self.tlb.access(vpage);
            if !hit {
                if let Some(tlb_dst) = self.l2tlb_dst {
                    // Park the request and ask the shared L2 TLB.
                    let req = TranslationReq::new(tlb_dst, vaddr);
                    self.waiting_tlb.insert(
                        req.meta.id,
                        WaitingOnTlb {
                            kind,
                            size,
                            up_id,
                            requester,
                            task,
                            accepted_at: now,
                        },
                    );
                    let tlb_port = self
                        .tlb_port
                        .as_ref()
                        .unwrap_or_else(|| {
                            panic!("AT {}: L2 TLB wired without a port", self.name())
                        })
                        .clone();
                    if let Err(m) = tlb_port.send(ctx, Box::new(req)) {
                        self.pending_tlb = Some(m);
                    }
                    progress = true;
                    if self.pending_tlb.is_some() {
                        break;
                    }
                    continue;
                }
            }
            let latency = if hit {
                self.cfg.hit_latency
            } else {
                self.tlb.insert(vpage);
                self.cfg.walk_latency
            };
            // In-order pipeline: never ready before the previous entry.
            let mut ready = now + self.base.freq.cycles(latency);
            if let Some(last) = self.pipeline.back() {
                ready = ready.max(last.ready);
            }
            self.pipeline.push_back(InFlight {
                ready,
                kind,
                phys: self.page_table.translate(vaddr),
                size,
                up_id,
                requester,
                task,
                accepted_at: now,
            });
            progress = true;
        }
        progress
    }
}

impl Component for AddressTranslator {
    fn base(&self) -> &CompBase {
        &self.base
    }

    fn base_mut(&mut self) -> &mut CompBase {
        &mut self.base
    }

    fn tick(&mut self, ctx: &mut Ctx) -> bool {
        let _prof = akita::profile::scope("AddressTranslator::tick");
        let mut progress = false;
        progress |= self.pass_responses_up(ctx);
        progress |= self.collect_tlb(ctx);
        progress |= self.issue_translated(ctx);
        progress |= self.accept_requests(ctx);
        let now = ctx.now();
        self.active_translations = self.pipeline.iter().filter(|e| e.ready > now).count();
        progress
    }

    fn state(&self) -> ComponentState {
        ComponentState::new()
            .container(
                "transactions",
                self.active_translations,
                Some(self.cfg.depth),
            )
            .container("pipeline", self.pipeline.len(), Some(self.cfg.depth))
            .container("awaiting_response", self.down_map.len(), None)
            .container("waiting_on_l2_tlb", self.waiting_tlb.len(), None)
            .field("tlb_hits", self.tlb.hits())
            .field("tlb_misses", self.tlb.misses())
            .field("translated", self.translated)
    }
}

impl std::fmt::Debug for AddressTranslator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AddressTranslator({} {} in flight)",
            self.name(),
            self.transactions()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_table_identity_fallback_and_mapping() {
        let pt = PageTable::new(4096);
        assert_eq!(pt.translate(0x5000), 0x5000);
        pt.map_page(0x5000, 0x9000);
        assert_eq!(pt.translate(0x5000), 0x9000);
        assert_eq!(pt.translate(0x5123), 0x9123);
        assert_eq!(pt.translate(0x6000), 0x6000);
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn tlb_hits_after_insert() {
        let mut tlb = Tlb::new(2);
        assert!(!tlb.access(1));
        tlb.insert(1);
        assert!(tlb.access(1));
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn tlb_evicts_lru() {
        let mut tlb = Tlb::new(2);
        tlb.insert(1);
        tlb.insert(2);
        assert!(tlb.access(1)); // 2 is now LRU
        tlb.insert(3);
        assert!(tlb.access(1));
        assert!(!tlb.access(2));
        assert!(tlb.access(3));
        assert_eq!(tlb.len(), 2);
    }

    #[test]
    fn tlb_reinsert_is_idempotent() {
        let mut tlb = Tlb::new(2);
        tlb.insert(7);
        tlb.insert(7);
        assert_eq!(tlb.len(), 1);
    }
}
