//! The shared second-level TLB.
//!
//! MGPUSim translates through a TLB hierarchy: per-CU L1 TLBs (inside the
//! address translator here) backed by a chiplet-shared L2 TLB, which walks
//! the page table on a miss. Enable with
//! `GpuConfig::shared_l2_tlb`; without it the address translator models the
//! walk with a fixed latency (the calibrated default).

use std::collections::VecDeque;
use std::rc::Rc;

use akita::{
    impl_msg, CompBase, Component, ComponentState, Ctx, Msg, MsgExt, MsgId, MsgMeta, Port, PortId,
    Simulation, VTime,
};
use serde::{Deserialize, Serialize};

use crate::at::{PageTable, Tlb};
use crate::msg::Addr;

/// Asks the L2 TLB to translate the page containing `vaddr`.
#[derive(Debug)]
pub struct TranslationReq {
    /// Message metadata.
    pub meta: MsgMeta,
    /// Virtual address to translate.
    pub vaddr: Addr,
}
impl_msg!(TranslationReq);

impl TranslationReq {
    /// Creates a translation request addressed to `dst`.
    pub fn new(dst: PortId, vaddr: Addr) -> Self {
        TranslationReq {
            meta: MsgMeta::new(dst, dst, 16),
            vaddr,
        }
    }
}

/// A completed translation.
#[derive(Debug)]
pub struct TranslationRsp {
    /// Message metadata.
    pub meta: MsgMeta,
    /// Id of the request this answers.
    pub respond_to: MsgId,
    /// The physical address of `vaddr`.
    pub paddr: Addr,
}
impl_msg!(TranslationRsp);

impl TranslationRsp {
    /// Creates a translation response addressed to `dst`.
    pub fn new(dst: PortId, respond_to: MsgId, paddr: Addr) -> Self {
        TranslationRsp {
            meta: MsgMeta::new(dst, dst, 24),
            respond_to,
            paddr,
        }
    }
}

/// Configuration for an [`L2Tlb`].
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct L2TlbConfig {
    /// Cached page translations.
    pub entries: usize,
    /// Cycles for an L2 TLB hit.
    pub hit_latency: u64,
    /// Cycles for the page-table walk on an L2 TLB miss.
    pub walk_latency: u64,
    /// Requests accepted per cycle.
    pub width: usize,
    /// Top-port buffer depth.
    pub top_buf: usize,
}

impl Default for L2TlbConfig {
    fn default() -> Self {
        L2TlbConfig {
            entries: 512,
            hit_latency: 8,
            walk_latency: 120,
            width: 4,
            top_buf: 8,
        }
    }
}

struct InFlight {
    ready: VTime,
    respond_to: MsgId,
    requester: PortId,
    paddr: Addr,
}

/// A chiplet-shared second-level TLB component.
pub struct L2Tlb {
    base: CompBase,
    /// Port facing the address translators.
    pub top: Port,
    cfg: L2TlbConfig,
    tlb: Tlb,
    page_table: Rc<PageTable>,
    pipeline: VecDeque<InFlight>,
    pending_up: Option<Box<dyn Msg>>,
    translations: u64,
}

impl L2Tlb {
    /// Creates an L2 TLB named `name`.
    pub fn new(sim: &Simulation, name: &str, page_table: Rc<PageTable>, cfg: L2TlbConfig) -> Self {
        let top = Port::new(
            &sim.buffer_registry(),
            format!("{name}.TopPort"),
            cfg.top_buf,
        );
        L2Tlb {
            base: CompBase::new("L2TLB", name),
            top,
            tlb: Tlb::new(cfg.entries),
            page_table,
            cfg,
            pipeline: VecDeque::new(),
            pending_up: None,
            translations: 0,
        }
    }

    /// TLB statistics `(hits, misses)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.tlb.hits(), self.tlb.misses())
    }

    fn respond(&mut self, ctx: &mut Ctx) -> bool {
        let now = ctx.now();
        let mut progress = false;
        if let Some(msg) = self.pending_up.take() {
            if let Err(msg) = self.top.send(ctx, msg) {
                self.pending_up = Some(msg);
                return false;
            }
            progress = true;
        }
        while self.pending_up.is_none() {
            let Some(head) = self.pipeline.front() else {
                break;
            };
            if head.ready > now {
                let id = self.base.id;
                let t = head.ready;
                ctx.schedule_tick(id, t);
                break;
            }
            let h = self.pipeline.pop_front().expect("front checked");
            let rsp: Box<dyn Msg> =
                Box::new(TranslationRsp::new(h.requester, h.respond_to, h.paddr));
            if let Err(m) = self.top.send(ctx, rsp) {
                self.pending_up = Some(m);
            }
            self.translations += 1;
            progress = true;
        }
        progress
    }

    fn accept(&mut self, ctx: &mut Ctx) -> bool {
        let now = ctx.now();
        let mut progress = false;
        for _ in 0..self.cfg.width {
            let Some(msg) = self.top.retrieve(ctx) else {
                break;
            };
            let req = (*msg)
                .downcast_ref::<TranslationReq>()
                .unwrap_or_else(|| panic!("L2TLB {}: unexpected message", self.name()));
            let vpage = req.vaddr / self.page_table.page_size();
            let latency = if self.tlb.access(vpage) {
                self.cfg.hit_latency
            } else {
                self.tlb.insert(vpage);
                self.cfg.walk_latency
            };
            let mut ready = now + self.base.freq.cycles(latency);
            if let Some(last) = self.pipeline.back() {
                ready = ready.max(last.ready);
            }
            self.pipeline.push_back(InFlight {
                ready,
                respond_to: req.meta.id,
                requester: req.meta.src,
                paddr: self.page_table.translate(req.vaddr),
            });
            progress = true;
        }
        progress
    }
}

impl Component for L2Tlb {
    fn base(&self) -> &CompBase {
        &self.base
    }

    fn base_mut(&mut self) -> &mut CompBase {
        &mut self.base
    }

    fn tick(&mut self, ctx: &mut Ctx) -> bool {
        let _prof = akita::profile::scope("L2Tlb::tick");
        let mut progress = false;
        progress |= self.respond(ctx);
        progress |= self.accept(ctx);
        progress
    }

    fn state(&self) -> ComponentState {
        ComponentState::new()
            .container("pipeline", self.pipeline.len(), None)
            .field("tlb_hits", self.tlb.hits())
            .field("tlb_misses", self.tlb.misses())
            .field("translations", self.translations)
    }
}

impl std::fmt::Debug for L2Tlb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "L2Tlb({} {} in pipeline)",
            self.name(),
            self.pipeline.len()
        )
    }
}
