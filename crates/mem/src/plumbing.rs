//! Small helpers shared by the memory-hierarchy components.

use std::collections::VecDeque;

use akita::{Ctx, Msg, Port};

/// A bounded queue of outbound messages with busy-retry semantics.
///
/// Components stage responses/requests here; [`SendQueue::flush`] pushes as
/// many as the connection accepts each tick. When a send is rejected the
/// message stays at the head and the connection wakes the component when
/// space frees, so no progress is silently lost.
#[derive(Debug)]
pub struct SendQueue {
    port: Port,
    queue: VecDeque<Box<dyn Msg>>,
    cap: usize,
}

impl SendQueue {
    /// Creates a queue flushing through `port`, holding at most `cap`
    /// staged messages.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(port: Port, cap: usize) -> Self {
        assert!(cap > 0, "send queue capacity must be positive");
        SendQueue {
            port,
            queue: VecDeque::new(),
            cap,
        }
    }

    /// The port this queue flushes through.
    pub fn port(&self) -> &Port {
        &self.port
    }

    /// Whether another message can be staged.
    pub fn can_push(&self) -> bool {
        self.queue.len() < self.cap
    }

    /// Stages `msg` for sending.
    ///
    /// # Panics
    ///
    /// Panics when full — callers must check [`SendQueue::can_push`]; this
    /// models a hardware queue that cannot overflow.
    pub fn push(&mut self, msg: Box<dyn Msg>) {
        assert!(
            self.can_push(),
            "send queue overflow on {}",
            self.port.name()
        );
        self.queue.push_back(msg);
    }

    /// Sends as many staged messages as the connection accepts.
    /// Returns whether at least one was sent.
    pub fn flush(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        while let Some(msg) = self.queue.pop_front() {
            match self.port.send(ctx, msg) {
                Ok(()) => progress = true,
                Err(msg) => {
                    self.queue.push_front(msg);
                    break;
                }
            }
        }
        progress
    }

    /// Staged message count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}
