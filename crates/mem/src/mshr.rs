//! Miss Status Holding Registers.
//!
//! An MSHR tracks outstanding cache misses per line and coalesces further
//! accesses to the same line onto the existing miss. Its capacity bounds a
//! cache's in-flight transactions — the "L1 pinned at 16 transactions"
//! pattern of Case Study 1 is exactly an MSHR at capacity.

use std::collections::HashMap;

use akita::{MsgId, PortId, TaskId, VTime};

use crate::addr::line_of;
use crate::msg::Addr;

/// One requester waiting on a miss.
#[derive(Debug, Clone)]
pub struct Waiter {
    /// Id of the upstream request to answer.
    pub req_id: MsgId,
    /// Port to send the answer to.
    pub requester: PortId,
    /// Bytes the upstream request asked for.
    pub size: u32,
    /// The upstream task, inherited onto the response and closed in the
    /// trace when the answer goes up.
    pub task: TaskId,
    /// When the cache accepted the request (virtual time), for service
    /// span measurement.
    pub accepted_at: VTime,
}

/// One outstanding miss.
#[derive(Debug)]
pub struct MshrEntry {
    /// The missing cache line's base address.
    pub line: Addr,
    /// Id of the downstream fetch, for response matching.
    pub downstream_id: MsgId,
    /// Upstream requests waiting for the fill.
    pub waiters: Vec<Waiter>,
}

/// A set of MSHRs with a fixed capacity.
#[derive(Debug)]
pub struct Mshr {
    capacity: usize,
    entries: HashMap<Addr, MshrEntry>,
    by_downstream: HashMap<MsgId, Addr>,
}

impl Mshr {
    /// Creates an MSHR file holding up to `capacity` outstanding lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        Mshr {
            capacity,
            entries: HashMap::new(),
            by_downstream: HashMap::new(),
        }
    }

    /// Outstanding misses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether no more misses can be tracked.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Capacity in lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The outstanding miss covering `addr`'s line, if any.
    pub fn lookup(&mut self, addr: Addr) -> Option<&mut MshrEntry> {
        self.entries.get_mut(&line_of(addr))
    }

    /// Starts tracking a miss for `addr`'s line fetched by downstream
    /// request `downstream_id`.
    ///
    /// # Panics
    ///
    /// Panics when full or when the line is already tracked — callers must
    /// check [`Mshr::lookup`] and [`Mshr::is_full`] first.
    pub fn allocate(&mut self, addr: Addr, downstream_id: MsgId, waiter: Waiter) {
        assert!(!self.is_full(), "MSHR allocate on full file");
        let line = line_of(addr);
        let prev = self.entries.insert(
            line,
            MshrEntry {
                line,
                downstream_id,
                waiters: vec![waiter],
            },
        );
        assert!(prev.is_none(), "MSHR line 0x{line:x} already tracked");
        self.by_downstream.insert(downstream_id, line);
    }

    /// The line being fetched by `downstream_id`, without completing it.
    pub fn peek_line(&self, downstream_id: MsgId) -> Option<Addr> {
        self.by_downstream.get(&downstream_id).copied()
    }

    /// Completes the miss fetched by `downstream_id`, returning its entry
    /// (with all coalesced waiters) or `None` for an unknown id.
    pub fn complete(&mut self, downstream_id: MsgId) -> Option<MshrEntry> {
        let line = self.by_downstream.remove(&downstream_id)?;
        self.entries.remove(&line)
    }

    /// Iterates over outstanding entries (for inspection).
    pub fn iter(&self) -> impl Iterator<Item = &MshrEntry> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn waiter() -> Waiter {
        Waiter {
            req_id: MsgId::fresh(),
            requester: {
                let reg = akita::BufferRegistry::new();
                akita::Port::new(&reg, "p", 1).id()
            },
            size: 4,
            task: TaskId::fresh(),
            accepted_at: VTime::ZERO,
        }
    }

    #[test]
    fn allocate_lookup_complete_cycle() {
        let mut m = Mshr::new(2);
        let down = MsgId::fresh();
        m.allocate(0x1004, down, waiter());
        // Same-line access coalesces.
        assert!(m.lookup(0x1030).is_some());
        m.lookup(0x1030).unwrap().waiters.push(waiter());
        // Different line misses.
        assert!(m.lookup(0x2000).is_none());
        let entry = m.complete(down).unwrap();
        assert_eq!(entry.line, 0x1000);
        assert_eq!(entry.waiters.len(), 2);
        assert!(m.is_empty());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut m = Mshr::new(1);
        m.allocate(0x0, MsgId::fresh(), waiter());
        assert!(m.is_full());
    }

    #[test]
    #[should_panic(expected = "full")]
    fn allocate_when_full_panics() {
        let mut m = Mshr::new(1);
        m.allocate(0x0, MsgId::fresh(), waiter());
        m.allocate(0x40, MsgId::fresh(), waiter());
    }

    #[test]
    #[should_panic(expected = "already tracked")]
    fn double_allocate_same_line_panics() {
        let mut m = Mshr::new(4);
        m.allocate(0x10, MsgId::fresh(), waiter());
        m.allocate(0x20, MsgId::fresh(), waiter());
    }

    #[test]
    fn unknown_completion_is_none() {
        let mut m = Mshr::new(1);
        assert!(m.complete(MsgId::fresh()).is_none());
    }
}
