//! The L2 cache: write-back, write-allocate, with a write buffer — and the
//! deadlock bug of the paper's Case Study 2.
//!
//! In MGPUSim's L2, evicted dirty lines pass through a *write buffer* on
//! their way to DRAM, and lines fetched *from* DRAM also pass through the
//! write buffer before entering local storage. The bug: local storage holds
//! an eviction it cannot push into the full write buffer, and therefore
//! refuses the fetched data the write buffer wants to hand over — a
//! circular wait that hangs the whole simulation. The fix (merged upstream
//! after the paper) lets local storage accept fetched data first, freeing a
//! write-buffer slot for the eviction.
//!
//! Set [`L2Config::inject_writeback_deadlock`] to reproduce the hang.

use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};

use akita::{
    trace, CompBase, Component, ComponentState, Ctx, Msg, MsgExt, MsgId, Port, PortId, Simulation,
    TaskId, VTime,
};

use crate::addr::{line_of, CACHE_LINE};
use crate::directory::{Directory, Victim};
use crate::msg::{Addr, DataReadyRsp, FlushDoneRsp, FlushReq, ReadReq, WriteDoneRsp, WriteReq};
use crate::mshr::{Mshr, Waiter};
use crate::plumbing::SendQueue;

/// Configuration for an [`L2Cache`].
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct L2Config {
    /// Total cache size in bytes (paper: 2 MiB shared per chiplet).
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u64,
    /// Hit latency in cycles.
    pub hit_latency: u64,
    /// MSHR entries.
    pub mshr_entries: usize,
    /// Write-buffer entries shared by evictions and fetched fills.
    pub write_buffer_cap: usize,
    /// Requests accepted per cycle.
    pub width: usize,
    /// Top-port buffer depth.
    pub top_buf: usize,
    /// Bottom-port buffer depth.
    pub bottom_buf: usize,
    /// Reintroduces the write-buffer ↔ local-storage circular wait
    /// (Case Study 2). Default `false` = the fixed behaviour.
    pub inject_writeback_deadlock: bool,
}

impl Default for L2Config {
    fn default() -> Self {
        L2Config {
            size_bytes: 2 * 1024 * 1024,
            ways: 16,
            hit_latency: 8,
            mshr_entries: 32,
            write_buffer_cap: 16,
            width: 4,
            top_buf: 8,
            bottom_buf: 8,
            inject_writeback_deadlock: false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum WbEntry {
    /// A dirty victim headed for DRAM.
    Evict(Addr),
    /// A fetched line headed for local storage, completing this fetch id.
    Fetched(MsgId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RspKind {
    Data(u32),
    WriteDone,
}

struct RspInFlight {
    ready: VTime,
    kind: RspKind,
    up_id: MsgId,
    requester: PortId,
    task: TaskId,
    accepted_at: VTime,
}

/// A write-back L2 cache component.
pub struct L2Cache {
    base: CompBase,
    site: trace::SiteId,
    /// Port facing the L1s (via the L1↔L2 switch or RDMA).
    pub top: Port,
    /// Port facing the DRAM controller.
    pub bottom: Port,
    /// Control port (flush requests from the dispatcher).
    pub ctrl: Port,
    dram_dst: Option<PortId>,
    cfg: L2Config,
    dir: Directory,
    mshr: Mshr,
    write_buffer: VecDeque<WbEntry>,
    /// The "local storage"'s single eviction staging slot (see module docs).
    staging_evict: Option<Addr>,
    /// Evictions in flight to DRAM, awaiting WriteDone.
    wb_writes: HashSet<MsgId>,
    rsp_pipeline: VecDeque<RspInFlight>,
    pending_down: VecDeque<Box<dyn Msg>>,
    up_queue: SendQueue,
    /// In-progress flush: dirty lines still to push plus the request to
    /// acknowledge once everything reaches DRAM.
    flushing: Option<(MsgId, PortId)>,
    flush_queue: VecDeque<Addr>,
    pending_ctrl: Option<Box<dyn Msg>>,
    flushes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    fills: u64,
}

impl L2Cache {
    /// Creates an L2 cache named `name`.
    pub fn new(sim: &Simulation, name: &str, cfg: L2Config) -> Self {
        let reg = sim.buffer_registry();
        let top = Port::new(&reg, format!("{name}.TopPort"), cfg.top_buf);
        let bottom = Port::new(&reg, format!("{name}.BottomPort"), cfg.bottom_buf);
        let ctrl = Port::new(&reg, format!("{name}.CtrlPort"), 2);
        let up_queue = SendQueue::new(top.clone(), cfg.width.max(4));
        // Expose the write buffer's fill level as its own monitorable
        // buffer via a dedicated probe component state instead; the shared
        // queue itself is internal.
        L2Cache {
            base: CompBase::new("L2Cache", name),
            site: trace::site(name),
            top,
            bottom,
            ctrl,
            dram_dst: None,
            dir: Directory::new(cfg.size_bytes, cfg.ways, CACHE_LINE),
            mshr: Mshr::new(cfg.mshr_entries),
            write_buffer: VecDeque::new(),
            staging_evict: None,
            wb_writes: HashSet::new(),
            rsp_pipeline: VecDeque::new(),
            pending_down: VecDeque::new(),
            up_queue,
            flushing: None,
            flush_queue: VecDeque::new(),
            pending_ctrl: None,
            flushes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            fills: 0,
            cfg,
        }
    }

    /// Points the L2 at its DRAM controller.
    pub fn set_dram(&mut self, dst: PortId) {
        self.dram_dst = Some(dst);
    }

    /// In-flight transactions: outstanding misses, buffered write-backs,
    /// and evictions awaiting DRAM acknowledgment.
    pub fn transactions(&self) -> usize {
        self.mshr.len() + self.write_buffer.len() + self.wb_writes.len()
    }

    /// Lifetime `(hits, misses)`.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Write-buffer occupancy `(len, cap)`.
    pub fn write_buffer_level(&self) -> (usize, usize) {
        (self.write_buffer.len(), self.cfg.write_buffer_cap)
    }

    /// Whether the deadlocked shape is currently present (diagnostic for
    /// tests and the hang case study).
    pub fn is_wedged(&self) -> bool {
        if !self.cfg.inject_writeback_deadlock
            || self.write_buffer.len() < self.cfg.write_buffer_cap
        {
            return false;
        }
        match self.write_buffer.front() {
            Some(WbEntry::Fetched(down_id)) => {
                self.staging_evict.is_some()
                    || self
                        .mshr
                        .peek_line(*down_id)
                        .is_some_and(|line| matches!(self.dir.peek_victim(line), Victim::Dirty(_)))
            }
            _ => false,
        }
    }

    fn dram(&self) -> PortId {
        self.dram_dst
            .unwrap_or_else(|| panic!("L2 {}: DRAM not wired", self.base.name))
    }

    fn flush_down(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        while let Some(msg) = self.pending_down.pop_front() {
            match self.bottom.send(ctx, msg) {
                Ok(()) => progress = true,
                Err(msg) => {
                    self.pending_down.push_front(msg);
                    break;
                }
            }
        }
        progress
    }

    /// Pulls DRAM responses into the write buffer (fills) or retires
    /// eviction acknowledgments.
    fn collect_responses(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        while let Some(is_fill) = self
            .bottom
            .peek(|m| m.downcast_ref::<DataReadyRsp>().is_some())
        {
            if is_fill && self.write_buffer.len() >= self.cfg.write_buffer_cap {
                // Fetched data must pass through the write buffer; full
                // buffer backpressures DRAM.
                break;
            }
            let msg = self.bottom.retrieve(ctx).expect("peeked above");
            if let Some(d) = (*msg).downcast_ref::<DataReadyRsp>() {
                self.write_buffer.push_back(WbEntry::Fetched(d.respond_to));
            } else if let Some(wd) = (*msg).downcast_ref::<WriteDoneRsp>() {
                assert!(
                    self.wb_writes.remove(&wd.respond_to),
                    "L2 {}: write-done {} matches no eviction",
                    self.name(),
                    wd.respond_to
                );
            } else {
                panic!("L2 {}: unexpected message from below", self.name());
            }
            progress = true;
        }
        progress
    }

    fn queue_response(
        &mut self,
        now: VTime,
        kind: RspKind,
        up_id: MsgId,
        requester: PortId,
        task: TaskId,
        accepted_at: VTime,
    ) {
        self.rsp_pipeline.push_back(RspInFlight {
            ready: now + self.base.freq.cycles(self.cfg.hit_latency),
            kind,
            up_id,
            requester,
            task,
            accepted_at,
        });
    }

    fn drain_rsp_pipeline(&mut self, ctx: &mut Ctx) -> bool {
        let now = ctx.now();
        let mut progress = false;
        while self.up_queue.can_push() {
            let Some(head) = self.rsp_pipeline.front() else {
                break;
            };
            if head.ready > now {
                let id = self.base.id;
                let t = head.ready;
                ctx.schedule_tick(id, t);
                break;
            }
            let h = self.rsp_pipeline.pop_front().expect("front checked");
            let (mut rsp, label): (Box<dyn Msg>, _) = match h.kind {
                RspKind::Data(size) => (
                    Box::new(DataReadyRsp::new(h.requester, h.up_id, size)),
                    "read",
                ),
                RspKind::WriteDone => (Box::new(WriteDoneRsp::new(h.requester, h.up_id)), "write"),
            };
            rsp.meta_mut().inherit_task(h.task, label);
            trace::complete(
                h.task,
                self.site,
                label,
                trace::Phase::Service,
                h.accepted_at,
                now,
            );
            self.up_queue.push(rsp);
            progress = true;
        }
        progress
    }

    /// Moves the staged eviction into the write buffer when space allows.
    fn destage(&mut self) -> bool {
        if let Some(addr) = self.staging_evict {
            if self.write_buffer.len() < self.cfg.write_buffer_cap {
                self.write_buffer.push_back(WbEntry::Evict(addr));
                self.staging_evict = None;
                return true;
            }
        }
        false
    }

    /// Drains the write buffer: evictions to DRAM, fetched fills to local
    /// storage. This is where the Case Study 2 bug lives.
    fn drain_write_buffer(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = self.destage();
        for _ in 0..self.cfg.width {
            match self.write_buffer.front().copied() {
                Some(WbEntry::Evict(addr)) => {
                    if self.pending_down.len() >= 4 {
                        break;
                    }
                    self.write_buffer.pop_front();
                    let down = WriteReq::new(self.dram(), addr, CACHE_LINE as u32);
                    self.wb_writes.insert(down.meta.id);
                    self.pending_down.push_back(Box::new(down));
                    self.evictions += 1;
                    progress = true;
                }
                Some(WbEntry::Fetched(down_id)) => {
                    if self.cfg.inject_writeback_deadlock {
                        // THE BUG: local storage insists on pushing the
                        // fill's dirty victim into the write buffer *before*
                        // consuming the fetched entry — ignoring that
                        // consuming it would free the very slot the eviction
                        // needs. With the buffer full of fetched data, the
                        // write buffer waits on local storage and local
                        // storage waits on the write buffer: circular wait.
                        let line = self.mshr.peek_line(down_id).unwrap_or_else(|| {
                            panic!("L2 {}: fill {down_id} matches no MSHR entry", self.name())
                        });
                        let needs_evict_slot = self.staging_evict.is_some()
                            || matches!(self.dir.peek_victim(line), Victim::Dirty(_));
                        if needs_evict_slot && self.write_buffer.len() >= self.cfg.write_buffer_cap
                        {
                            break;
                        }
                    }
                    self.write_buffer.pop_front();
                    let entry = self.mshr.complete(down_id).unwrap_or_else(|| {
                        panic!("L2 {}: fill {down_id} matches no MSHR entry", self.name())
                    });
                    self.fills += 1;
                    match self.dir.allocate(entry.line) {
                        Victim::Dirty(vaddr) => {
                            // The fixed path: the pop above freed a slot, so
                            // the eviction (via staging) makes progress.
                            self.staging_evict = Some(vaddr);
                            self.destage();
                        }
                        Victim::Clean(_) | Victim::None => {}
                    }
                    let now = ctx.now();
                    for w in entry.waiters {
                        self.queue_response(
                            now,
                            RspKind::Data(w.size),
                            w.req_id,
                            w.requester,
                            w.task,
                            w.accepted_at,
                        );
                    }
                    progress = true;
                }
                None => break,
            }
        }
        progress |= self.destage();
        progress
    }

    /// Handles flush control traffic: dirty lines drain through the write
    /// buffer to DRAM, then the directory is empty and the flush acks.
    fn handle_ctrl(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        if let Some(msg) = self.pending_ctrl.take() {
            match self.ctrl.send(ctx, msg) {
                Ok(()) => progress = true,
                Err(msg) => {
                    self.pending_ctrl = Some(msg);
                    return false;
                }
            }
        }
        if self.flushing.is_none() {
            if let Some(msg) = self.ctrl.retrieve(ctx) {
                let req = (*msg)
                    .downcast_ref::<FlushReq>()
                    .unwrap_or_else(|| panic!("L2 {}: unexpected control message", self.name()));
                self.flushing = Some((req.meta.id, req.meta.src));
                self.flush_queue = self.dir.drain_all().into();
                progress = true;
            }
        }
        if self.flushing.is_some() {
            // Feed dirty lines into the write buffer as space allows.
            while self.write_buffer.len() < self.cfg.write_buffer_cap {
                let Some(addr) = self.flush_queue.pop_front() else {
                    break;
                };
                self.write_buffer.push_back(WbEntry::Evict(addr));
                progress = true;
            }
            let drained = self.flush_queue.is_empty()
                && self.staging_evict.is_none()
                && self.write_buffer.is_empty()
                && self.wb_writes.is_empty()
                && self.mshr.is_empty();
            if drained {
                let (req_id, requester) = self.flushing.take().expect("checked");
                self.flushes += 1;
                let rsp: Box<dyn Msg> = Box::new(FlushDoneRsp::new(requester, req_id));
                if let Err(m) = self.ctrl.send(ctx, rsp) {
                    self.pending_ctrl = Some(m);
                }
                progress = true;
            }
        }
        progress
    }

    fn accept_requests(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        let now = ctx.now();
        if self.flushing.is_some() {
            // No new work while draining.
            return false;
        }
        for _ in 0..self.cfg.width {
            if self.pending_down.len() >= 4 {
                break;
            }
            enum Action {
                ReadHit,
                ReadCoalesce,
                ReadMiss,
                WriteHit,
                WriteAllocate,
            }
            let action = {
                let Some(head) = self.top.peek(|m| {
                    if let Some(r) = m.downcast_ref::<ReadReq>() {
                        Some((true, r.addr))
                    } else {
                        m.downcast_ref::<WriteReq>().map(|w| (false, w.addr))
                    }
                }) else {
                    break;
                };
                let (is_read, addr) =
                    head.unwrap_or_else(|| panic!("L2 {}: unexpected message kind", self.name()));
                if is_read {
                    if self.dir.contains(addr) {
                        Action::ReadHit
                    } else if self.mshr.lookup(addr).is_some() {
                        Action::ReadCoalesce
                    } else if self.mshr.is_full() {
                        break;
                    } else {
                        Action::ReadMiss
                    }
                } else if self.dir.contains(addr) {
                    Action::WriteHit
                } else {
                    // Write-allocate needs room for a potential dirty victim.
                    if matches!(self.dir.peek_victim(addr), Victim::Dirty(_))
                        && (self.staging_evict.is_some()
                            || self.write_buffer.len() >= self.cfg.write_buffer_cap)
                    {
                        break;
                    }
                    Action::WriteAllocate
                }
            };
            let msg = self.top.retrieve(ctx).expect("peeked above");
            match action {
                Action::ReadHit => {
                    let r = (*msg).downcast_ref::<ReadReq>().expect("peeked read");
                    self.hits += 1;
                    trace::begin(r.meta.task, self.site, "read", now);
                    self.queue_response(
                        now,
                        RspKind::Data(r.size),
                        r.meta.id,
                        r.meta.src,
                        r.meta.task,
                        now,
                    );
                }
                Action::ReadCoalesce => {
                    let r = (*msg).downcast_ref::<ReadReq>().expect("peeked read");
                    self.misses += 1;
                    trace::begin(r.meta.task, self.site, "read", now);
                    self.mshr
                        .lookup(r.addr)
                        .expect("coalesce checked")
                        .waiters
                        .push(Waiter {
                            req_id: r.meta.id,
                            requester: r.meta.src,
                            size: r.size,
                            task: r.meta.task,
                            accepted_at: now,
                        });
                }
                Action::ReadMiss => {
                    let r = (*msg).downcast_ref::<ReadReq>().expect("peeked read");
                    self.misses += 1;
                    trace::begin(r.meta.task, self.site, "read", now);
                    let line = line_of(r.addr);
                    let mut down = ReadReq::new(self.dram(), line, CACHE_LINE as u32);
                    down.meta.inherit_task(r.meta.task, r.meta.task_kind);
                    self.mshr.allocate(
                        r.addr,
                        down.meta.id,
                        Waiter {
                            req_id: r.meta.id,
                            requester: r.meta.src,
                            size: r.size,
                            task: r.meta.task,
                            accepted_at: now,
                        },
                    );
                    self.pending_down.push_back(Box::new(down));
                }
                Action::WriteHit => {
                    let w = (*msg).downcast_ref::<WriteReq>().expect("peeked write");
                    self.hits += 1;
                    trace::begin(w.meta.task, self.site, "write", now);
                    self.dir.mark_dirty(w.addr);
                    self.queue_response(
                        now,
                        RspKind::WriteDone,
                        w.meta.id,
                        w.meta.src,
                        w.meta.task,
                        now,
                    );
                }
                Action::WriteAllocate => {
                    let w = (*msg).downcast_ref::<WriteReq>().expect("peeked write");
                    self.misses += 1;
                    trace::begin(w.meta.task, self.site, "write", now);
                    // Full-line write allocation: install without fetching.
                    match self.dir.allocate(w.addr) {
                        Victim::Dirty(vaddr) => {
                            if self.write_buffer.len() < self.cfg.write_buffer_cap {
                                self.write_buffer.push_back(WbEntry::Evict(vaddr));
                            } else {
                                self.staging_evict = Some(vaddr);
                            }
                        }
                        Victim::Clean(_) | Victim::None => {}
                    }
                    self.dir.mark_dirty(w.addr);
                    self.queue_response(
                        now,
                        RspKind::WriteDone,
                        w.meta.id,
                        w.meta.src,
                        w.meta.task,
                        now,
                    );
                }
            }
            progress = true;
        }
        progress
    }
}

impl Component for L2Cache {
    fn base(&self) -> &CompBase {
        &self.base
    }

    fn base_mut(&mut self) -> &mut CompBase {
        &mut self.base
    }

    fn tick(&mut self, ctx: &mut Ctx) -> bool {
        let _prof = akita::profile::scope("L2Cache::tick");
        let mut progress = false;
        progress |= self.up_queue.flush(ctx);
        progress |= self.flush_down(ctx);
        progress |= self.collect_responses(ctx);
        progress |= self.drain_write_buffer(ctx);
        progress |= self.drain_rsp_pipeline(ctx);
        progress |= self.handle_ctrl(ctx);
        progress |= self.accept_requests(ctx);
        progress |= self.up_queue.flush(ctx);
        progress |= self.flush_down(ctx);
        progress
    }

    fn state(&self) -> ComponentState {
        ComponentState::new()
            .container(
                "transactions",
                self.transactions(),
                Some(self.cfg.mshr_entries + self.cfg.write_buffer_cap * 2),
            )
            .container("mshr", self.mshr.len(), Some(self.cfg.mshr_entries))
            .container(
                "write_buffer",
                self.write_buffer.len(),
                Some(self.cfg.write_buffer_cap),
            )
            .field("staging_evict_busy", self.staging_evict.is_some())
            .field("hits", self.hits)
            .field("misses", self.misses)
            .field("evictions", self.evictions)
            .field("fills", self.fills)
            .field("flushes", self.flushes)
            .field("flushing", self.flushing.is_some())
            .field("wedged", self.is_wedged())
    }
}

impl std::fmt::Debug for L2Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "L2Cache({} {} transactions, wb {}/{})",
            self.name(),
            self.transactions(),
            self.write_buffer.len(),
            self.cfg.write_buffer_cap
        )
    }
}
