//! A banked DRAM controller with open-row policy.
//!
//! Requests map to banks by address; each bank keeps one row open. A
//! request hitting the open row pays the access latency; a different row
//! adds the precharge+activate penalty. Banks serve requests independently
//! (bank-level parallelism), each with a minimum gap between completions.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use akita::{
    trace, CompBase, Component, ComponentState, Ctx, Msg, MsgExt, Port, Simulation, TaskId, VTime,
};

use crate::msg::{Addr, DataReadyRsp, ReadReq, WriteDoneRsp, WriteReq};

/// Configuration for a [`Dram`] controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct DramConfig {
    /// Access latency for an open-row hit.
    pub latency: VTime,
    /// Additional latency when the row must be opened first.
    pub row_miss_penalty: VTime,
    /// Minimum gap between completions on one bank (inverse per-bank
    /// throughput).
    pub service_interval: VTime,
    /// Number of banks.
    pub banks: usize,
    /// Bytes per row (row-buffer size).
    pub row_bytes: u64,
    /// Internal request queue depth; full queue backpressures the port.
    pub queue_cap: usize,
    /// Top-port buffer depth.
    pub top_buf: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            latency: VTime::from_ns(60),
            row_miss_penalty: VTime::from_ns(40),
            service_interval: VTime::from_ps(2_000), // per bank
            banks: 8,
            row_bytes: 2 * 1024,
            queue_cap: 64,
            top_buf: 16,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    next_free: VTime,
}

struct Completion {
    ready: VTime,
    seq: u64,
    rsp: Box<dyn Msg>,
    task: TaskId,
    accepted_at: VTime,
}

impl PartialEq for Completion {
    fn eq(&self, other: &Self) -> bool {
        (self.ready, self.seq) == (other.ready, other.seq)
    }
}
impl Eq for Completion {}
impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ready, self.seq).cmp(&(other.ready, other.seq))
    }
}

/// A banked DRAM controller component.
pub struct Dram {
    base: CompBase,
    site: trace::SiteId,
    /// Port facing the L2 cache.
    pub top: Port,
    cfg: DramConfig,
    banks: Vec<Bank>,
    queue: BinaryHeap<Reverse<Completion>>,
    next_seq: u64,
    pending_up: Option<Box<dyn Msg>>,
    reads: u64,
    writes: u64,
    row_hits: u64,
    row_misses: u64,
}

impl Dram {
    /// Creates a DRAM controller named `name`.
    ///
    /// # Panics
    ///
    /// Panics when `banks` is zero or `row_bytes` is not a power of two.
    pub fn new(sim: &Simulation, name: &str, cfg: DramConfig) -> Self {
        assert!(cfg.banks > 0, "need at least one bank");
        assert!(cfg.row_bytes.is_power_of_two(), "row size must be 2^n");
        let top = Port::new(
            &sim.buffer_registry(),
            format!("{name}.TopPort"),
            cfg.top_buf,
        );
        Dram {
            base: CompBase::new("DRAM", name),
            site: trace::site(name),
            top,
            banks: vec![Bank::default(); cfg.banks],
            cfg,
            queue: BinaryHeap::new(),
            next_seq: 0,
            pending_up: None,
            reads: 0,
            writes: 0,
            row_hits: 0,
            row_misses: 0,
        }
    }

    /// Lifetime `(reads, writes)` served.
    pub fn traffic(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Lifetime `(row hits, row misses)`.
    pub fn row_stats(&self) -> (u64, u64) {
        (self.row_hits, self.row_misses)
    }

    fn bank_and_row(&self, addr: Addr) -> (usize, u64) {
        let bank = ((addr / self.cfg.row_bytes) % self.cfg.banks as u64) as usize;
        let row = addr / (self.cfg.row_bytes * self.cfg.banks as u64);
        (bank, row)
    }

    fn complete_ready(&mut self, ctx: &mut Ctx) -> bool {
        let now = ctx.now();
        let mut progress = false;
        if let Some(msg) = self.pending_up.take() {
            if let Err(msg) = self.top.send(ctx, msg) {
                self.pending_up = Some(msg);
                return false;
            }
            progress = true;
        }
        while self.pending_up.is_none() {
            let Some(Reverse(head)) = self.queue.peek() else {
                break;
            };
            if head.ready > now {
                let id = self.base.id;
                let t = head.ready;
                ctx.schedule_tick(id, t);
                break;
            }
            let c = self.queue.pop().expect("peeked").0;
            trace::complete(
                c.task,
                self.site,
                c.rsp.meta().task_kind,
                trace::Phase::Service,
                c.accepted_at,
                now,
            );
            if let Err(msg) = self.top.send(ctx, c.rsp) {
                self.pending_up = Some(msg);
            }
            progress = true;
        }
        progress
    }

    fn accept(&mut self, ctx: &mut Ctx) -> bool {
        let now = ctx.now();
        let mut progress = false;
        while self.queue.len() < self.cfg.queue_cap {
            let Some(msg) = self.top.retrieve(ctx) else {
                break;
            };
            let (addr, mut rsp): (Addr, Box<dyn Msg>) =
                if let Some(r) = (*msg).downcast_ref::<ReadReq>() {
                    self.reads += 1;
                    (
                        r.addr,
                        Box::new(DataReadyRsp::new(r.meta.src, r.meta.id, r.size)),
                    )
                } else if let Some(w) = (*msg).downcast_ref::<WriteReq>() {
                    self.writes += 1;
                    (w.addr, Box::new(WriteDoneRsp::new(w.meta.src, w.meta.id)))
                } else {
                    panic!("DRAM {}: unexpected message", self.name());
                };
            let (task, kind) = {
                let m = msg.meta();
                (m.task, m.task_kind)
            };
            rsp.meta_mut().inherit_task(task, kind);
            trace::begin(task, self.site, kind, now);
            let (bank_idx, row) = self.bank_and_row(addr);
            let bank = &mut self.banks[bank_idx];
            let mut access = self.cfg.latency;
            if bank.open_row == Some(row) {
                self.row_hits += 1;
            } else {
                self.row_misses += 1;
                access += self.cfg.row_miss_penalty;
                bank.open_row = Some(row);
            }
            let start = bank.next_free.max(now);
            let ready = start + access;
            bank.next_free = start + self.cfg.service_interval;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.queue.push(Reverse(Completion {
                ready,
                seq,
                rsp,
                task,
                accepted_at: now,
            }));
            progress = true;
        }
        progress
    }
}

impl Component for Dram {
    fn base(&self) -> &CompBase {
        &self.base
    }

    fn base_mut(&mut self) -> &mut CompBase {
        &mut self.base
    }

    fn tick(&mut self, ctx: &mut Ctx) -> bool {
        let _prof = akita::profile::scope("DRAM::tick");
        let mut progress = false;
        progress |= self.complete_ready(ctx);
        progress |= self.accept(ctx);
        progress
    }

    fn state(&self) -> ComponentState {
        ComponentState::new()
            .container("queue", self.queue.len(), Some(self.cfg.queue_cap))
            .field("banks", self.cfg.banks)
            .field("reads", self.reads)
            .field("writes", self.writes)
            .field("row_hits", self.row_hits)
            .field("row_misses", self.row_misses)
            .field("holding_response", self.pending_up.is_some())
    }
}

impl std::fmt::Debug for Dram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Dram({} {} banks, queue {}/{})",
            self.name(),
            self.cfg.banks,
            self.queue.len(),
            self.cfg.queue_cap
        )
    }
}
