//! Address-based routing to downstream memory modules.
//!
//! MGPUSim components find their "low module" (the next component toward
//! memory) by address. A [`LowModuleFinder`] answers "which port do I send a
//! request for address X to?" — the mechanism that lets an L1 cache split
//! traffic across interleaved L2 banks and divert remote-chiplet addresses
//! to the RDMA engine.

use std::fmt::Debug;

use akita::PortId;

use crate::addr::Interleaving;
use crate::msg::Addr;

/// Maps an address to the destination port of the responsible module.
pub trait LowModuleFinder: Debug {
    /// The port to send a request for `addr` to.
    fn find(&self, addr: Addr) -> PortId;
}

/// Everything goes to a single module.
#[derive(Debug, Clone, Copy)]
pub struct SingleLowModule(pub PortId);

impl LowModuleFinder for SingleLowModule {
    fn find(&self, _addr: Addr) -> PortId {
        self.0
    }
}

/// Addresses interleave across several modules (e.g. L2 banks).
#[derive(Debug, Clone)]
pub struct InterleavedLowModules {
    interleaving: Interleaving,
    ports: Vec<PortId>,
}

impl InterleavedLowModules {
    /// Creates a finder interleaving across `ports` at `granularity` bytes.
    ///
    /// # Panics
    ///
    /// Panics when `ports` is empty or `granularity` is not a power of two.
    pub fn new(granularity: u64, ports: Vec<PortId>) -> Self {
        let interleaving = Interleaving::new(ports.len() as u64, granularity);
        InterleavedLowModules {
            interleaving,
            ports,
        }
    }
}

impl LowModuleFinder for InterleavedLowModules {
    fn find(&self, addr: Addr) -> PortId {
        self.ports[self.interleaving.owner_of(addr) as usize]
    }
}

/// Chiplet-aware routing: local addresses interleave across local L2 banks,
/// remote addresses go to the RDMA engine (paper Case Study 1 topology).
#[derive(Debug, Clone)]
pub struct ChipletRouter {
    /// Which chiplet owns which address range.
    chiplet_interleaving: Interleaving,
    /// This chiplet's index.
    local_chiplet: u64,
    /// Local L2 bank routing.
    local_banks: InterleavedLowModules,
    /// Port of the local RDMA engine, for remote addresses.
    rdma: PortId,
}

impl ChipletRouter {
    /// Creates a router for chiplet `local_chiplet` of
    /// `chiplet_interleaving.units()` chiplets.
    pub fn new(
        chiplet_interleaving: Interleaving,
        local_chiplet: u64,
        local_banks: InterleavedLowModules,
        rdma: PortId,
    ) -> Self {
        assert!(
            local_chiplet < chiplet_interleaving.units(),
            "chiplet index out of range"
        );
        ChipletRouter {
            chiplet_interleaving,
            local_chiplet,
            local_banks,
            rdma,
        }
    }

    /// Whether `addr` is owned by this chiplet.
    pub fn is_local(&self, addr: Addr) -> bool {
        self.chiplet_interleaving.owner_of(addr) == self.local_chiplet
    }
}

impl LowModuleFinder for ChipletRouter {
    fn find(&self, addr: Addr) -> PortId {
        if self.is_local(addr) {
            self.local_banks.find(addr)
        } else {
            self.rdma
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use akita::{BufferRegistry, Port};

    fn port(reg: &BufferRegistry, name: &str) -> PortId {
        Port::new(reg, name, 1).id()
    }

    #[test]
    fn single_always_answers_the_same() {
        let reg = BufferRegistry::new();
        let p = port(&reg, "only");
        let f = SingleLowModule(p);
        assert_eq!(f.find(0), p);
        assert_eq!(f.find(u64::MAX), p);
    }

    #[test]
    fn interleaved_splits_by_granularity() {
        let reg = BufferRegistry::new();
        let a = port(&reg, "a");
        let b = port(&reg, "b");
        let f = InterleavedLowModules::new(4096, vec![a, b]);
        assert_eq!(f.find(0), a);
        assert_eq!(f.find(4096), b);
        assert_eq!(f.find(8192), a);
        assert_eq!(f.find(4095), a);
    }

    #[test]
    fn chiplet_router_diverts_remote_to_rdma() {
        let reg = BufferRegistry::new();
        let bank0 = port(&reg, "bank0");
        let bank1 = port(&reg, "bank1");
        let rdma = port(&reg, "rdma");
        let router = ChipletRouter::new(
            Interleaving::new(2, 4096),
            0,
            InterleavedLowModules::new(64, vec![bank0, bank1]),
            rdma,
        );
        // Chiplet 0 owns chunks 0, 2, 4, ... of 4 KiB.
        assert!(router.is_local(0));
        assert!(!router.is_local(4096));
        assert_eq!(router.find(0), bank0);
        assert_eq!(router.find(64), bank1);
        assert_eq!(router.find(4096), rdma);
        assert_eq!(router.find(4096 + 64), rdma);
    }
}
