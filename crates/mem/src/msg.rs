//! The memory protocol: read/write requests and their responses.
//!
//! Components at every level of the hierarchy (ROB, address translator,
//! caches, DRAM, RDMA) speak this protocol. Each hop issues its own
//! downstream request with a fresh [`MsgId`] and routes the response back
//! using `respond_to`, exactly like MGPUSim's `mem` protocol.

use akita::{impl_msg, MsgId, MsgMeta, PortId};

/// Byte address in the (virtual or physical) address space.
pub type Addr = u64;

/// A read request for `size` bytes at `addr`.
#[derive(Debug, Clone)]
pub struct ReadReq {
    /// Message metadata.
    pub meta: MsgMeta,
    /// Start address.
    pub addr: Addr,
    /// Bytes requested.
    pub size: u32,
}
impl_msg!(ReadReq, clone);

impl ReadReq {
    /// Creates a read request addressed to `dst`.
    pub fn new(dst: PortId, addr: Addr, size: u32) -> Self {
        // Request messages are small on the wire: header + address.
        let meta = MsgMeta::new(dst, dst, 24).with_kind("read");
        ReadReq { meta, addr, size }
    }
}

/// A write request of `size` bytes at `addr` (timing-only: no data payload).
#[derive(Debug, Clone)]
pub struct WriteReq {
    /// Message metadata.
    pub meta: MsgMeta,
    /// Start address.
    pub addr: Addr,
    /// Bytes written.
    pub size: u32,
}
impl_msg!(WriteReq, clone);

impl WriteReq {
    /// Creates a write request addressed to `dst`. The wire traffic includes
    /// the written bytes.
    pub fn new(dst: PortId, addr: Addr, size: u32) -> Self {
        let meta = MsgMeta::new(dst, dst, 24 + size).with_kind("write");
        WriteReq { meta, addr, size }
    }
}

/// The data response completing a [`ReadReq`].
#[derive(Debug, Clone)]
pub struct DataReadyRsp {
    /// Message metadata.
    pub meta: MsgMeta,
    /// Id of the request this answers.
    pub respond_to: MsgId,
    /// Bytes carried (mirrors the request size).
    pub size: u32,
}
impl_msg!(DataReadyRsp, clone);

impl DataReadyRsp {
    /// Creates a data response to request `respond_to`, addressed to `dst`.
    pub fn new(dst: PortId, respond_to: MsgId, size: u32) -> Self {
        let meta = MsgMeta::new(dst, dst, 24 + size).with_kind("read");
        DataReadyRsp {
            meta,
            respond_to,
            size,
        }
    }
}

/// The acknowledgment completing a [`WriteReq`].
#[derive(Debug, Clone)]
pub struct WriteDoneRsp {
    /// Message metadata.
    pub meta: MsgMeta,
    /// Id of the request this answers.
    pub respond_to: MsgId,
}
impl_msg!(WriteDoneRsp, clone);

impl WriteDoneRsp {
    /// Creates a write acknowledgment to request `respond_to`, addressed to
    /// `dst`.
    pub fn new(dst: PortId, respond_to: MsgId) -> Self {
        let meta = MsgMeta::new(dst, dst, 24).with_kind("write");
        WriteDoneRsp { meta, respond_to }
    }
}

/// Asks a cache to write back dirty state and invalidate everything.
///
/// MGPUSim flushes caches at kernel boundaries; the dispatcher sends this
/// to every cache's control port and waits for the [`FlushDoneRsp`]s
/// before the next kernel launches.
#[derive(Debug, Clone)]
pub struct FlushReq {
    /// Message metadata.
    pub meta: MsgMeta,
}
impl_msg!(FlushReq, clone);

impl FlushReq {
    /// Creates a flush request addressed to `dst`.
    pub fn new(dst: PortId) -> Self {
        FlushReq {
            meta: MsgMeta::new(dst, dst, 16).with_kind("flush"),
        }
    }
}

/// Completion of a [`FlushReq`]: the cache is clean and empty.
#[derive(Debug, Clone)]
pub struct FlushDoneRsp {
    /// Message metadata.
    pub meta: MsgMeta,
    /// Id of the flush request this answers.
    pub respond_to: MsgId,
}
impl_msg!(FlushDoneRsp, clone);

impl FlushDoneRsp {
    /// Creates a flush acknowledgment to request `respond_to`.
    pub fn new(dst: PortId, respond_to: MsgId) -> Self {
        FlushDoneRsp {
            meta: MsgMeta::new(dst, dst, 16).with_kind("flush"),
            respond_to,
        }
    }
}

/// A uniform view over the two request types, for components that treat
/// reads and writes alike while queueing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read access.
    Read,
    /// A write access.
    Write,
}

impl AccessKind {
    /// The task-kind label used by [`akita::trace`] histograms.
    pub const fn label(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        }
    }
}

/// Inspects a message as a memory request, if it is one.
pub fn as_request(msg: &dyn akita::Msg) -> Option<(AccessKind, Addr, u32, MsgId, PortId)> {
    use akita::MsgExt;
    if let Some(r) = msg.downcast_ref::<ReadReq>() {
        Some((AccessKind::Read, r.addr, r.size, r.meta.id, r.meta.src))
    } else {
        msg.downcast_ref::<WriteReq>()
            .map(|w| (AccessKind::Write, w.addr, w.size, w.meta.id, w.meta.src))
    }
}

/// Inspects a message as a memory response, returning `(respond_to, src)`.
pub fn as_response(msg: &dyn akita::Msg) -> Option<(MsgId, PortId)> {
    use akita::MsgExt;
    if let Some(r) = msg.downcast_ref::<DataReadyRsp>() {
        Some((r.respond_to, r.meta.src))
    } else {
        msg.downcast_ref::<WriteDoneRsp>()
            .map(|w| (w.respond_to, w.meta.src))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use akita::Msg;

    #[test]
    fn requests_carry_traffic_proportional_to_writes() {
        let dst = {
            let reg = akita::BufferRegistry::new();
            akita::Port::new(&reg, "p", 1).id()
        };
        let r = ReadReq::new(dst, 0x1000, 64);
        let w = WriteReq::new(dst, 0x1000, 64);
        assert!(w.meta().traffic_bytes > r.meta().traffic_bytes);
    }

    #[test]
    fn as_request_classifies() {
        let reg = akita::BufferRegistry::new();
        let dst = akita::Port::new(&reg, "p", 1).id();
        let r: Box<dyn Msg> = Box::new(ReadReq::new(dst, 0x40, 4));
        let (kind, addr, size, _, _) = as_request(&*r).unwrap();
        assert_eq!(kind, AccessKind::Read);
        assert_eq!(addr, 0x40);
        assert_eq!(size, 4);
        let d: Box<dyn Msg> = Box::new(DataReadyRsp::new(dst, r.meta().id, 4));
        assert!(as_request(&*d).is_none());
        assert_eq!(as_response(&*d).unwrap().0, r.meta().id);
    }
}
