//! Integration tests wiring the full memory chain:
//! requester → ROB → AT → L1 → L2 → DRAM, including the Case Study 2
//! write-buffer deadlock.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use akita::{
    CompBase, Component, ComponentState, Ctx, DirectConnection, Msg, MsgExt, MsgId, Port, PortId,
    RunState, Simulation, VTime,
};
use akita_mem::{
    AddressTranslator, AtConfig, DataReadyRsp, Dram, DramConfig, L1Cache, L1Config, L2Cache,
    L2Config, PageTable, ReadReq, ReorderBuffer, RobConfig, SingleLowModule, WriteDoneRsp,
    WriteReq,
};

/// A scripted memory requester standing in for a compute unit.
struct Requester {
    base: CompBase,
    out: Port,
    dst: Option<PortId>,
    script: Vec<(bool, u64, u32)>, // (is_read, addr, size)
    next: usize,
    inflight: HashMap<MsgId, (bool, u64)>,
    completed: Vec<(bool, u64)>,
    max_inflight: usize,
}

impl Requester {
    fn new(sim: &Simulation, name: &str, script: Vec<(bool, u64, u32)>) -> Self {
        let out = Port::new(&sim.buffer_registry(), format!("{name}.Out"), 8);
        Requester {
            base: CompBase::new("Requester", name),
            out,
            dst: None,
            script,
            next: 0,
            inflight: HashMap::new(),
            completed: Vec::new(),
            max_inflight: 32,
        }
    }
}

impl Component for Requester {
    fn base(&self) -> &CompBase {
        &self.base
    }
    fn base_mut(&mut self) -> &mut CompBase {
        &mut self.base
    }

    fn tick(&mut self, ctx: &mut Ctx) -> bool {
        let mut progress = false;
        // Collect completions.
        while let Some(msg) = self.out.retrieve(ctx) {
            if let Some(d) = (*msg).downcast_ref::<DataReadyRsp>() {
                let (is_read, addr) = self.inflight.remove(&d.respond_to).expect("known req");
                assert!(is_read);
                self.completed.push((true, addr));
            } else if let Some(w) = (*msg).downcast_ref::<WriteDoneRsp>() {
                let (is_read, addr) = self.inflight.remove(&w.respond_to).expect("known req");
                assert!(!is_read);
                self.completed.push((false, addr));
            } else {
                panic!("unexpected response");
            }
            progress = true;
        }
        // Issue next accesses.
        while self.next < self.script.len() && self.inflight.len() < self.max_inflight {
            let dst = self.dst.expect("wired");
            let (is_read, addr, size) = self.script[self.next];
            let msg: Box<dyn Msg> = if is_read {
                let r = ReadReq::new(dst, addr, size);
                self.inflight.insert(r.meta.id, (true, addr));
                Box::new(r)
            } else {
                let w = WriteReq::new(dst, addr, size);
                self.inflight.insert(w.meta.id, (false, addr));
                Box::new(w)
            };
            match self.out.send(ctx, msg) {
                Ok(()) => {
                    self.next += 1;
                    progress = true;
                }
                Err(m) => {
                    // Back off: undo bookkeeping, retry when woken.
                    let id = m.meta().id;
                    self.inflight.remove(&id);
                    break;
                }
            }
        }
        progress
    }

    fn state(&self) -> ComponentState {
        ComponentState::new()
            .field("issued", self.next)
            .container("inflight", self.inflight.len(), Some(self.max_inflight))
            .field("completed", self.completed.len())
    }
}

struct TestBench {
    sim: Simulation,
    requester: Rc<RefCell<Requester>>,
    l1: Rc<RefCell<L1Cache>>,
    l2: Rc<RefCell<L2Cache>>,
    rob: Rc<RefCell<ReorderBuffer>>,
    at: Rc<RefCell<AddressTranslator>>,
    dram: Rc<RefCell<Dram>>,
}

fn build_bench(script: Vec<(bool, u64, u32)>, l2_cfg: L2Config) -> TestBench {
    let mut sim = Simulation::new();
    let pt = PageTable::new(4096);

    let requester = Requester::new(&sim, "CU", script);
    let rob = ReorderBuffer::new(&sim, "ROB", RobConfig::default());
    let at = AddressTranslator::new(&sim, "AT", pt, AtConfig::default());
    let l1 = L1Cache::new(
        &sim,
        "L1",
        L1Config {
            size_bytes: 1024,
            ways: 2,
            ..L1Config::default()
        },
    );
    let l2 = L2Cache::new(&sim, "L2", l2_cfg);
    let dram = Dram::new(&sim, "DRAM", DramConfig::default());

    // Wire destinations (each component's "low module").
    let req_out = requester.out.clone();
    let rob_top = rob.top.clone();
    let rob_bottom = rob.bottom.clone();
    let at_top = at.top.clone();
    let at_bottom = at.bottom.clone();
    let l1_top = l1.top.clone();
    let l1_bottom = l1.bottom.clone();
    let l2_top = l2.top.clone();
    let l2_bottom = l2.bottom.clone();
    let dram_top = dram.top.clone();

    let (req_id, requester) = sim.register(requester);
    let (rob_id, rob) = sim.register(rob);
    let (at_id, at) = sim.register(at);
    let (l1_id, l1) = sim.register(l1);
    let (l2_id, l2) = sim.register(l2);
    let (dram_id, dram) = sim.register(dram);

    requester.borrow_mut().dst = Some(rob_top.id());
    rob.borrow_mut().set_bottom_dst(at_top.id());
    at.borrow_mut()
        .set_low(Box::new(SingleLowModule(l1_top.id())));
    l1.borrow_mut()
        .set_low(Box::new(SingleLowModule(l2_top.id())));
    l2.borrow_mut().set_dram(dram_top.id());

    // One connection per hop, like MGPUSim's per-link DirectConnections.
    let hops: Vec<(Port, akita::ComponentId, Port, akita::ComponentId)> = vec![
        (req_out, req_id, rob_top, rob_id),
        (rob_bottom, rob_id, at_top, at_id),
        (at_bottom, at_id, l1_top, l1_id),
        (l1_bottom, l1_id, l2_top, l2_id),
        (l2_bottom, l2_id, dram_top, dram_id),
    ];
    for (i, (up, up_owner, down, down_owner)) in hops.into_iter().enumerate() {
        let (_, conn) = sim.register(DirectConnection::new(
            format!("Conn{i}"),
            VTime::from_ps(1_000),
        ));
        sim.connect(&conn, &up, up_owner);
        sim.connect(&conn, &down, down_owner);
    }

    sim.wake_at(req_id, VTime::ZERO);
    TestBench {
        sim,
        requester,
        l1,
        l2,
        rob,
        at,
        dram,
    }
}

fn reads(addrs: impl IntoIterator<Item = u64>) -> Vec<(bool, u64, u32)> {
    addrs.into_iter().map(|a| (true, a, 4)).collect()
}

#[test]
fn single_read_misses_all_the_way_to_dram() {
    let mut bench = build_bench(reads([0x1000]), L2Config::default());
    bench.sim.run();
    let req = bench.requester.borrow();
    assert_eq!(req.completed, vec![(true, 0x1000)]);
    assert_eq!(bench.l1.borrow().hit_stats(), (0, 1));
    assert_eq!(bench.l2.borrow().hit_stats(), (0, 1));
    assert_eq!(bench.dram.borrow().traffic(), (1, 0));
    // End-to-end latency must include the DRAM access (100 ns).
    assert!(bench.sim.now() >= VTime::from_ns(100));
}

#[test]
fn second_read_hits_in_l1() {
    let mut bench = build_bench(reads([0x2000, 0x2004]), L2Config::default());
    bench.sim.run();
    assert_eq!(bench.requester.borrow().completed.len(), 2);
    let (hits, misses) = bench.l1.borrow().hit_stats();
    // Same line: either a hit (if serialized) or a coalesced miss — with a
    // 32-deep requester window both fly together and the second coalesces.
    assert_eq!(hits + misses, 2);
    assert_eq!(bench.dram.borrow().traffic().0, 1, "only one line fetch");
}

#[test]
fn distinct_lines_fan_out_to_distinct_fetches() {
    let addrs: Vec<u64> = (0..20).map(|i| 0x4000 + i * 64).collect();
    let mut bench = build_bench(reads(addrs), L2Config::default());
    bench.sim.run();
    assert_eq!(bench.requester.borrow().completed.len(), 20);
    assert_eq!(bench.dram.borrow().traffic().0, 20);
}

#[test]
fn writes_complete_and_dirty_the_l2() {
    let script: Vec<(bool, u64, u32)> = (0..10).map(|i| (false, 0x8000 + i * 64, 64)).collect();
    let mut bench = build_bench(script, L2Config::default());
    bench.sim.run();
    let req = bench.requester.borrow();
    assert_eq!(req.completed.len(), 10);
    assert!(req.completed.iter().all(|(is_read, _)| !is_read));
    // Write-through L1 forwarded all writes; write-back L2 absorbed them.
    assert_eq!(bench.l1.borrow().hit_stats().0, 0);
    assert_eq!(bench.dram.borrow().traffic().1, 0, "no write-backs yet");
}

#[test]
fn capacity_pressure_causes_l2_evictions_to_dram() {
    // Dirty far more lines than a tiny L2 can hold, then the evictions
    // must reach DRAM.
    let l2_cfg = L2Config {
        size_bytes: 4096, // 64 lines
        ways: 4,
        ..L2Config::default()
    };
    let script: Vec<(bool, u64, u32)> = (0..256).map(|i| (false, i * 64, 64)).collect();
    let mut bench = build_bench(script, l2_cfg);
    bench.sim.run();
    assert_eq!(bench.requester.borrow().completed.len(), 256);
    let (_, writes) = bench.dram.borrow().traffic();
    assert!(
        writes >= 150,
        "most dirty lines must be written back, got {writes}"
    );
}

#[test]
fn mixed_read_write_stream_completes() {
    let mut script = Vec::new();
    for i in 0..100u64 {
        script.push((i % 3 != 0, (i % 37) * 64, 4));
    }
    let mut bench = build_bench(script, L2Config::default());
    bench.sim.run();
    assert_eq!(bench.requester.borrow().completed.len(), 100);
    assert_eq!(bench.rob.borrow().total_retired(), 100);
    assert_eq!(bench.rob.borrow().transactions(), 0, "ROB drained");
    assert_eq!(bench.l1.borrow().transactions(), 0, "L1 drained");
    assert_eq!(bench.l2.borrow().transactions(), 0, "L2 drained");
}

#[test]
fn tlb_misses_then_hits_within_a_page() {
    let addrs: Vec<u64> = (0..16).map(|i| 0x10_0000 + i * 64).collect();
    let mut bench = build_bench(reads(addrs), L2Config::default());
    bench.sim.run();
    let (hits, misses) = bench.at.borrow().tlb_stats();
    assert_eq!(hits + misses, 16);
    assert_eq!(misses, 1, "one page, one walk");
}

/// The Case Study 2 reproduction: with the bug injected, a read+write
/// working set larger than the L2 wedges the write buffer against local
/// storage and the simulation hangs (queue drains, progress stops).
fn deadlock_bench(inject: bool) -> TestBench {
    let l2_cfg = L2Config {
        size_bytes: 1024, // 16 lines: tiny, evicts constantly
        ways: 2,
        mshr_entries: 16,
        // A single-entry write buffer makes the circular wait deterministic
        // even with one requester: the fill at the head *is* the full
        // buffer, and its dirty victim has nowhere to go.
        write_buffer_cap: 1,
        inject_writeback_deadlock: inject,
        ..L2Config::default()
    };
    let mut script = Vec::new();
    // Dirty the whole tiny L2, then blast reads to new lines so fills need
    // dirty evictions while the write buffer is saturated with fills.
    for i in 0..64u64 {
        script.push((false, i * 64, 64));
    }
    for i in 64..256u64 {
        script.push((true, i * 64, 4));
    }
    build_bench(script, l2_cfg)
}

#[test]
fn fixed_l2_survives_the_deadlock_workload() {
    let mut bench = deadlock_bench(false);
    bench.sim.run();
    assert_eq!(bench.requester.borrow().completed.len(), 256);
    assert!(!bench.l2.borrow().is_wedged());
}

#[test]
fn buggy_l2_hangs_and_is_observable_like_case_study_2() {
    let mut bench = deadlock_bench(true);
    let summary = bench.sim.run();
    // The queue drained but work is incomplete: a hang, indistinguishable
    // from completion to the engine (paper task T3)...
    assert_eq!(summary.reason, akita::StopReason::Completed);
    let completed = bench.requester.borrow().completed.len();
    assert!(
        completed < 256,
        "deadlock must prevent completion, finished {completed}"
    );
    // ...but the monitor-facing signals give it away, exactly as in the
    // paper: buffers still hold content and the L2 reports the wedge.
    assert!(bench.l2.borrow().is_wedged());
    assert!(bench.l2.borrow().transactions() > 0);
    let (wb_len, wb_cap) = bench.l2.borrow().write_buffer_level();
    assert_eq!(wb_len, wb_cap, "write buffer pinned at capacity");
    assert!(
        bench.rob.borrow().transactions() > 0,
        "ROB holds stuck work"
    );

    // Kick-starting every component (the paper's recovery probe) does not
    // clear a true deadlock: the sim quiesces again.
    let client = bench.sim.client();
    let probe = std::thread::spawn(move || {
        let mut saw_idle = false;
        for _ in 0..500 {
            if client.run_state() == RunState::Idle {
                saw_idle = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let woken = client.kick_start().expect("kick start");
        // Give the engine time to re-run the woken ticks and quiesce again.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let idle_again = client.run_state() == RunState::Idle;
        client.terminate().expect("terminate");
        (saw_idle, woken, idle_again)
    });
    bench.sim.run_interactive();
    let (saw_idle, woken, idle_again) = probe.join().unwrap();
    assert!(saw_idle, "hung sim reports Idle");
    assert!(woken > 0);
    assert!(idle_again, "kick start cannot fix a code bug");
    assert!(
        bench.l2.borrow().is_wedged(),
        "still wedged after kick start"
    );
}

mod proptests {
    use super::*;

    /// Deterministic xorshift64* generator replacing proptest's runner in
    /// this offline build; cases reproduce exactly across runs.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// Any access script through the full chain completes: every
    /// request gets exactly one response, nothing deadlocks (with the
    /// fixed L2), and the machine drains.
    #[test]
    fn random_scripts_always_complete() {
        let mut rng = XorShift(0x2B99_2DDF_A232_49D6);
        for _case in 0..24 {
            let len = (rng.next() % 119 + 1) as usize;
            let sizes = [4u32, 16, 64];
            let script: Vec<(bool, u64, u32)> = (0..len)
                .map(|_| {
                    (
                        rng.next().is_multiple_of(2),
                        (rng.next() % (1 << 14)) * 4,
                        sizes[(rng.next() % 3) as usize],
                    )
                })
                .collect();
            let n = script.len();
            let mut bench = build_bench(
                script,
                L2Config {
                    size_bytes: 4096,
                    ways: 2,
                    write_buffer_cap: 2,
                    mshr_entries: 8,
                    ..L2Config::default()
                },
            );
            let summary = bench.sim.run();
            assert_eq!(summary.reason, akita::StopReason::Completed);
            assert_eq!(bench.requester.borrow().completed.len(), n);
            assert_eq!(bench.rob.borrow().transactions(), 0);
            assert_eq!(bench.l1.borrow().transactions(), 0);
            assert_eq!(bench.l2.borrow().transactions(), 0);
        }
    }

    /// Read-your-own-machine sanity: DRAM never sees more line reads
    /// than there are distinct lines touched (caching can only help).
    #[test]
    fn dram_reads_bounded_by_distinct_lines() {
        let mut rng = XorShift(0x9609_4B8E_43B0_D5E1);
        for _case in 0..24 {
            let len = (rng.next() % 79 + 1) as usize;
            let addrs: Vec<u64> = (0..len).map(|_| rng.next() % (1 << 12)).collect();
            let script: Vec<(bool, u64, u32)> = addrs.iter().map(|&a| (true, a * 8, 4)).collect();
            let distinct: std::collections::HashSet<u64> =
                addrs.iter().map(|&a| akita_mem::line_of(a * 8)).collect();
            let mut bench = build_bench(script, L2Config::default());
            bench.sim.run();
            let (reads, _) = bench.dram.borrow().traffic();
            assert!(reads as usize <= distinct.len());
        }
    }
}

#[test]
fn dram_row_buffer_rewards_locality() {
    // Sequential lines stream through one open row; scattered rows pay the
    // activate penalty every time.
    let sequential: Vec<u64> = (0..32).map(|i| i * 64).collect();
    let scattered: Vec<u64> = (0..32).map(|i| i * 16 * 1024 + 64).collect();

    let run = |addrs: Vec<u64>| {
        let mut bench = build_bench(
            addrs.iter().map(|&a| (true, a, 4)).collect(),
            L2Config {
                // Tiny L2 so every line actually reaches DRAM.
                size_bytes: 128,
                ways: 2,
                ..L2Config::default()
            },
        );
        bench.sim.run();
        assert_eq!(bench.requester.borrow().completed.len(), addrs.len());
        let dram = bench.dram.borrow();
        (bench.sim.now(), dram.row_stats())
    };

    let (t_seq, (hits_seq, miss_seq)) = run(sequential);
    let (t_scat, (hits_scat, miss_scat)) = run(scattered);
    assert!(
        hits_seq > miss_seq,
        "sequential lines mostly hit the open row: {hits_seq}h/{miss_seq}m"
    );
    assert_eq!(
        hits_scat, 0,
        "16 KiB-strided lines never share a row: {hits_scat}h/{miss_scat}m"
    );
    assert!(
        t_scat > t_seq,
        "row misses must cost virtual time: seq={t_seq}, scattered={t_scat}"
    );
}

#[test]
fn dram_banks_serve_in_parallel() {
    // Same number of accesses; one set collides on a single bank, the
    // other spreads across banks. Bank parallelism must show in the time.
    let banks = 8u64;
    let row = 2 * 1024u64;
    let same_bank: Vec<u64> = (0..24).map(|i| i * row * banks).collect();
    let spread: Vec<u64> = (0..24).map(|i| i * row).collect();

    let run = |addrs: Vec<u64>| {
        let mut bench = build_bench(
            addrs.iter().map(|&a| (true, a, 4)).collect(),
            L2Config {
                size_bytes: 128,
                ways: 2,
                ..L2Config::default()
            },
        );
        bench.sim.run();
        assert_eq!(bench.requester.borrow().completed.len(), addrs.len());
        bench.sim.now()
    };
    let t_same = run(same_bank);
    let t_spread = run(spread);
    assert!(
        t_same > t_spread,
        "bank conflicts must cost time: same-bank={t_same}, spread={t_spread}"
    );
}
