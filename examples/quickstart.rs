//! Quickstart: run a GPU simulation with AkitaRTM attached.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! Builds a small single-chiplet GPU, enqueues the FIR benchmark, starts
//! the monitoring web server, prints its URL (open it in a browser!), and
//! runs the simulation. Set `RTM_HOLD=1` to keep the simulation alive
//! after it finishes so the dashboard can be explored post-mortem; press
//! Ctrl-C or POST `/api/terminate` to exit.

use std::sync::Arc;
use std::time::Duration;

use akita_gpu::{GpuConfig, Platform, PlatformConfig};
use akita_rtm::{Monitor, RtmServer};
use akita_workloads::{Fir, Workload};

fn main() {
    // 1. Build a platform: 8 CUs, one chiplet, default memory hierarchy.
    let mut platform = Platform::build(PlatformConfig {
        gpu: GpuConfig::scaled(8),
        ..PlatformConfig::default()
    });

    // 2. Enqueue a workload: host-to-device copy, kernel, copy back.
    let fir = Fir {
        num_samples: 64 * 1024,
        ..Fir::default()
    };
    fir.enqueue(&mut platform.driver.borrow_mut());
    platform.start();

    // 3. Attach AkitaRTM and start the web backend. From here on the
    //    simulation is a web server.
    let monitor = Arc::new(Monitor::attach(
        &platform.sim,
        platform.progress.clone(),
        Duration::from_millis(100),
    ));
    let server = RtmServer::start_local(Arc::clone(&monitor)).expect("bind monitor server");
    println!("AkitaRTM listening on {}", server.url());
    println!("open it in a browser to watch the simulation live\n");

    // 4. Run. The engine serves monitor queries between events.
    let summary = if std::env::var("RTM_HOLD").is_ok() {
        println!("RTM_HOLD set: simulation will stay inspectable after finishing.");
        platform.sim.run_interactive()
    } else {
        platform.sim.run()
    };

    // 5. Report.
    println!(
        "simulation finished: {} events, {} of virtual time",
        summary.events, summary.end_time
    );
    for bar in platform.progress.snapshot() {
        println!(
            "  progress `{}`: {}/{} done",
            bar.name, bar.finished, bar.total
        );
    }
    let cu = &platform.chiplets[0].cus[0];
    let (insts, mem, wgs) = cu.borrow().stats();
    println!("  CU[0]: {insts} instructions, {mem} memory accesses, {wgs} workgroups");
    let (reads, writes) = platform.chiplets[0].dram.borrow().traffic();
    println!("  DRAM: {reads} line reads, {writes} line writes");
}
