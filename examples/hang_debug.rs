//! Hang debugging: the paper's Case Study 2 as an interactive session.
//!
//! ```text
//! cargo run --example hang_debug --release
//! ```
//!
//! Runs FIR against an L2 cache with the write-buffer deadlock bug
//! injected, detects the hang through the monitor (frozen progress bar,
//! frozen simulation time, idle engine), inspects buffer levels, probes
//! with Tick / Kick Start, and pinpoints the wedged L2 bank — without ever
//! restarting the simulation.

use std::time::{Duration, Instant};

use akita_gpu::{GpuConfig, Platform, PlatformConfig};
use akita_mem::L2Config;
use akita_rtm::client;
use akita_workloads::{Fir, Workload};

fn main() {
    let (tx, rx) = std::sync::mpsc::channel();
    let sim_thread = std::thread::spawn(move || {
        let mut gpu = GpuConfig::scaled(4);
        gpu.l2 = L2Config {
            size_bytes: 2048,
            ways: 2,
            write_buffer_cap: 1,
            inject_writeback_deadlock: true, // the Case Study 2 bug
            ..L2Config::default()
        };
        let mut platform = Platform::build(PlatformConfig {
            gpu,
            ..PlatformConfig::default()
        });
        let fir = Fir {
            num_samples: 64 * 1024,
            ..Fir::default()
        };
        fir.enqueue(&mut platform.driver.borrow_mut());
        platform.start();
        let monitor = std::sync::Arc::new(akita_rtm::Monitor::attach(
            &platform.sim,
            platform.progress.clone(),
            Duration::from_millis(20),
        ));
        let server = akita_rtm::RtmServer::start_local(monitor).expect("bind");
        tx.send(server).expect("hand over server");
        platform.sim.run_interactive()
    });
    let server = rx.recv().expect("server");
    let addr = server.addr();
    println!("FIR with a buggy L2 — monitoring at {}\n", server.url());

    // Detect the hang the way a user would: the progress bar stops, the
    // simulation time stops, and the engine reports Idle with work left.
    println!("[detect] watching for the hang…");
    let start = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let now = client::get(addr, "/api/now").unwrap().json().unwrap();
        if now["state"] == "Idle" {
            println!(
                "  simulation went quiet after {:.1}s of wall time at {} ps of virtual time",
                start.elapsed().as_secs_f64(),
                now["now_ps"]
            );
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(300),
            "expected the injected deadlock to hang the simulation"
        );
    }
    let bars = client::get(addr, "/api/progress").unwrap().json().unwrap();
    for bar in bars.as_array().unwrap() {
        if bar["name"].as_str().unwrap().contains("kernel") {
            println!(
                "  kernel progress frozen at {}/{} workgroups — a hang, not completion\n",
                bar["finished"], bar["total"]
            );
        }
    }

    // Identify hanging components: non-empty buffers.
    println!("[inspect] buffers still holding content:");
    let rows = client::get(addr, "/api/buffers?sort=size&top=6")
        .unwrap()
        .json()
        .unwrap();
    for row in rows.as_array().unwrap() {
        if row["size"].as_u64().unwrap() > 0 {
            println!(
                "  {:<40} {}/{}",
                row["name"].as_str().unwrap(),
                row["size"],
                row["capacity"]
            );
        }
    }
    println!();

    // Probe: tick the suspect, kick-start everything. A lost-wakeup bug
    // would recover; a true deadlock quiesces again.
    println!("[probe] Tick GPU[0].L2[0], then Kick Start…");
    client::post(addr, "/api/tick?name=GPU%5B0%5D.L2%5B0%5D", None).expect("tick");
    let kick = client::post(addr, "/api/kickstart", None)
        .unwrap()
        .json()
        .unwrap();
    println!("  woke {} components", kick["woken"]);
    std::thread::sleep(Duration::from_millis(300));
    let state = client::get(addr, "/api/now").unwrap().json().unwrap()["state"].clone();
    println!("  engine state after kick start: {state} — still wedged\n");

    // Pinpoint: the L2's own fields confess.
    println!("[diagnose] L2 bank state:");
    for bank in 0..2 {
        let dto = client::get(
            addr,
            &format!("/api/component?name=GPU%5B0%5D.L2%5B{bank}%5D"),
        )
        .unwrap()
        .json()
        .unwrap();
        let fields = dto["state"]["fields"].as_array().unwrap();
        let field = |n: &str| {
            fields
                .iter()
                .find(|f| f["name"] == n)
                .map(|f| f["value"]["v"].clone())
                .unwrap_or_default()
        };
        println!(
            "  GPU[0].L2[{bank}]: wedged={} write_buffer={} staging_evict_busy={}",
            field("wedged"),
            field("write_buffer"),
            field("staging_evict_busy")
        );
    }
    println!();
    println!("the write buffer is full and its head is fetched data that local storage");
    println!("refuses while it cannot queue its eviction first — the circular wait of");
    println!("Case Study 2. Fix: consume the fetched entry first (the default when");
    println!("`inject_writeback_deadlock` is off).");

    let _ = client::post(addr, "/api/terminate", None);
    let _ = sim_thread.join();
}
