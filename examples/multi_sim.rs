//! Multiple monitored simulations on one machine (paper task T2).
//!
//! ```text
//! cargo run --example multi_sim --release
//! ```
//!
//! Architects "often use command line tools such as top to monitor CPU and
//! memory utilization when they start a batch of simulations" — and top
//! cannot tell the simulations apart. Here each simulation gets its own
//! AkitaRTM server, so each reports its own progress, state, and resource
//! usage independently.

use std::time::Duration;

use akita_gpu::{GpuConfig, Platform, PlatformConfig};
use akita_rtm::client;
use akita_workloads::by_name;

fn spawn_sim(workload_name: &'static str) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let mut platform = Platform::build(PlatformConfig {
            gpu: GpuConfig::scaled(4),
            ..PlatformConfig::default()
        });
        let workload = by_name(workload_name).expect("known workload");
        workload.enqueue(&mut platform.driver.borrow_mut());
        platform.start();
        let monitor = std::sync::Arc::new(akita_rtm::Monitor::attach(
            &platform.sim,
            platform.progress.clone(),
            Duration::from_millis(100),
        ));
        let server = akita_rtm::RtmServer::start_local(monitor).expect("bind");
        tx.send(server.addr()).expect("hand address back");
        platform.sim.run();
        // Keep the server up briefly so the final poll sees Finished.
        std::thread::sleep(Duration::from_millis(600));
        drop(server);
    });
    (rx.recv().expect("address"), handle)
}

fn main() {
    let sims: Vec<(&str, std::net::SocketAddr, std::thread::JoinHandle<()>)> =
        ["fir", "kmeans", "transpose"]
            .into_iter()
            .map(|name| {
                let (addr, handle) = spawn_sim(name);
                println!("{name:<10} monitoring at http://{addr}/");
                (name, addr, handle)
            })
            .collect();
    println!();

    // One shared terminal "dashboard of dashboards".
    for round in 0..40 {
        std::thread::sleep(Duration::from_millis(200));
        let mut all_done = true;
        let mut line = format!("t+{:>4}ms ", round * 200);
        for (name, addr, _) in &sims {
            match client::get(*addr, "/api/now") {
                Ok(r) => {
                    let j = r.json().unwrap_or_default();
                    let state = j["state"].as_str().unwrap_or("?").to_owned();
                    if state != "Finished" {
                        all_done = false;
                    }
                    line.push_str(&format!(
                        "| {name}: {state:<8} {:>12} ev ",
                        j["events"].as_u64().unwrap_or(0)
                    ));
                }
                Err(_) => line.push_str(&format!("| {name}: done(server gone) ")),
            }
        }
        println!("{line}");
        if all_done {
            break;
        }
    }

    for (_, _, handle) in sims {
        let _ = handle.join();
    }
    println!("\nall simulations finished; each was independently observable.");
}
