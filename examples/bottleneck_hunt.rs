//! Bottleneck hunt: the paper's Case Study 1 as an interactive session.
//!
//! ```text
//! cargo run --example bottleneck_hunt --release
//! ```
//!
//! Runs im2col on a 4-chiplet MCM GPU with a slow inter-chiplet network,
//! then walks the published analysis over the live HTTP API:
//! check the progress bar, refresh the buffer analyzer, flag suspicious
//! values, and follow the evidence from the ROB through the address
//! translator and L1 down to the RDMA engine.

use std::time::Duration;

use akita::VTime;
use akita_gpu::{GpuConfig, Platform, PlatformConfig};
use akita_rtm::client;
use akita_workloads::{Im2col, Workload};

// The MonitoredSim harness lives in the bench crate; examples keep their
// own tiny copy to stay self-contained.
fn main() {
    let (tx, rx) = std::sync::mpsc::channel();
    let sim_thread = std::thread::spawn(move || {
        let mut gpu = GpuConfig::scaled(8);
        gpu.cu.max_outstanding_per_wf = 16;
        gpu.cu.mem_issue_width = 2;
        gpu.l1.size_bytes = 2 * 1024;
        let mut platform = Platform::build(PlatformConfig {
            chiplets: 4,
            net_latency: VTime::from_ns(500),
            net_bandwidth: Some(250_000_000),
            gpu,
            ..PlatformConfig::default()
        });
        let im2col = Im2col {
            batch: 64,
            ..Im2col::default()
        };
        im2col.enqueue(&mut platform.driver.borrow_mut());
        platform.start();
        let monitor = std::sync::Arc::new(akita_rtm::Monitor::attach(
            &platform.sim,
            platform.progress.clone(),
            Duration::from_millis(10),
        ));
        let server = akita_rtm::RtmServer::start_local(monitor).expect("bind");
        tx.send(server).expect("hand over server");
        platform.sim.run_interactive()
    });
    let server = rx.recv().expect("server");
    let addr = server.addr();
    println!(
        "im2col on a 4-chiplet MCM GPU — monitoring at {}\n",
        server.url()
    );

    // Step 1: initial assessment — is the simulation healthy?
    println!("[assess] waiting for smooth progress…");
    let mut last_done = 0;
    for _ in 0..1000 {
        std::thread::sleep(Duration::from_millis(20));
        let bars = client::get(addr, "/api/progress").unwrap().json().unwrap();
        if let Some(done) = bars
            .as_array()
            .unwrap()
            .iter()
            .find(|b| b["name"].as_str().unwrap().contains("kernel"))
            .and_then(|b| b["finished"].as_u64())
        {
            if done > 8 && done > last_done {
                println!(
                    "  progress bar moving ({done} workgroups done) — simulation is healthy\n"
                );
                break;
            }
            last_done = done;
        }
    }

    // Step 2: refresh the bottleneck analyzer a few times.
    println!("[analyze] most occupied buffers across three refreshes:");
    let (mut rob_hits, mut rdma_hits) = (0, 0);
    for refresh in 0..3 {
        std::thread::sleep(Duration::from_millis(150));
        let rows = client::get(addr, "/api/buffers?sort=percent&top=10")
            .unwrap()
            .json()
            .unwrap();
        println!("  refresh {refresh}:");
        for row in rows.as_array().unwrap() {
            let name = row["name"].as_str().unwrap();
            if name.contains("L1VROB") {
                rob_hits += 1;
            }
            if name.contains("RDMA") {
                rdma_hits += 1;
            }
            println!("    {:<40} {}/{}", name, row["size"], row["capacity"]);
        }
    }
    println!(
        "  RDMA port buffers appeared {rdma_hits}x and L1VROB top ports {rob_hits}x at the top —"
    );
    println!("  being repeatedly placed at the top strongly suggests a bottleneck there.\n");

    // Step 3: flag values and compare components down the hierarchy.
    println!("[monitor] flagging transaction counts down the memory hierarchy…");
    for (component, field) in [
        ("GPU[0].SA[0].L1VROB[0]", "transactions"),
        ("GPU[0].SA[0].L1VAddrTrans[0]", "transactions"),
        ("GPU[0].SA[0].L1VCache[0]", "transactions"),
        ("GPU[0].RDMA", "transactions"),
    ] {
        let body = format!(r#"{{"component":"{component}","field":"{field}"}}"#);
        client::post(addr, "/api/watch", Some(&body)).expect("watch");
    }
    std::thread::sleep(Duration::from_secs(2));
    let series = client::get(addr, "/api/watches").unwrap().json().unwrap();
    for s in series.as_array().unwrap() {
        let points = s["points"].as_array().unwrap();
        let values: Vec<f64> = points
            .iter()
            .map(|p| p["value"].as_f64().unwrap())
            .collect();
        let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
        let max = values.iter().cloned().fold(0.0, f64::max);
        println!(
            "  {:<32} mean {:>7.1}  max {:>7.1}",
            s["component"].as_str().unwrap(),
            mean,
            max
        );
    }
    println!();
    println!("[conclude] the RDMA engine holds by far the most in-flight transactions —");
    println!("requests waiting on the slow inter-chiplet network. The network is the");
    println!("bottleneck; terminate early and change the configuration instead of");
    println!("waiting days for the full run (the paper's \"fail early, fail fast\").");

    let _ = client::post(addr, "/api/terminate", None);
    let _ = sim_thread.join();
}
