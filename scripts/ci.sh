#!/usr/bin/env bash
# Local CI gate: format, lint, test. Mirrors what reviewers run before
# merging. Works fully offline — every dependency is vendored in-tree, so
# no step touches a registry (--offline keeps cargo from trying).
set -euo pipefail

cd "$(dirname "$0")/.."

# Some cargo versions reject --offline for fmt; it takes no deps anyway.
echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> cargo bench --no-run (benches compile)"
cargo bench --offline --workspace --no-run

echo "==> engine throughput smoke (sanity floor, not a perf gate)"
cargo run --offline --release -q -p rtm-bench --bin bench_engine -- --smoke

echo "==> OK"
