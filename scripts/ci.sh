#!/usr/bin/env bash
# Local CI gate: format, lint, test. Mirrors what reviewers run before
# merging. Works fully offline — every dependency is vendored in-tree, so
# no step touches a registry (--offline keeps cargo from trying).
set -euo pipefail

cd "$(dirname "$0")/.."

# Some cargo versions reject --offline for fmt; it takes no deps anyway.
echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test"
# Includes the curl-free HTTP e2e suites (tests/http_e2e.rs,
# tests/monitoring_contract.rs): a real server on a real socket driven by
# the in-process blocking client — no external tools needed.
cargo test --offline --workspace -q

echo "==> cargo bench --no-run (benches compile)"
cargo bench --offline --workspace --no-run

echo "==> engine throughput smoke (sanity floor + tracing on/off overhead)"
cargo run --offline --release -q -p rtm-bench --bin bench_engine -- --smoke

echo "==> parallel engine bit-identity (--threads 2 diffed against --threads 1)"
# Full event-log identity is asserted at test level (the engine
# differential suite in crates/akita/tests/par_differential.rs and the
# MCM-GPU platform test), and the bench smoke above re-asserts the Fig 4
# chain's event totals at 1 vs 2 threads. This step closes the loop
# end-to-end through the CLI: the same MCM-GPU FIR run must report the
# same completion summary (events + virtual time) at both thread counts.
par_a="$(mktemp)"
par_b="$(mktemp)"
cargo run --offline --release -q -p akita-rtm-cli --bin rtm-sim -- \
    run --workload fir --chiplets 4 --threads 1 --no-monitor |
    sed -n 's/\( of virtual time\).*/\1/; s/^done: //p' >"$par_a"
cargo run --offline --release -q -p akita-rtm-cli --bin rtm-sim -- \
    run --workload fir --chiplets 4 --threads 2 --no-monitor |
    sed -n 's/\( of virtual time\).*/\1/; s/^done: //p' >"$par_b"
if [ ! -s "$par_a" ]; then
    echo "FAIL: --threads 1 run produced no completion summary" >&2
    exit 1
fi
if ! diff "$par_a" "$par_b"; then
    echo "FAIL: --threads 2 diverged from --threads 1" >&2
    exit 1
fi
echo "parallel bit-identity gate OK ($(cat "$par_a"))"
rm -f "$par_a" "$par_b"

echo "==> fault-injection smoke (determinism, clean drop drain, hang diagnosis)"
cargo run --offline --release -q -p rtm-bench --bin fault_smoke

echo "==> watchdog catches the canned stuck-full hang plan (rtm-sim exit 5)"
# The canned plan wedges GPU[0].L2[0]'s front door; the armed watchdog must
# end the run with the documented stall exit code and name the injected
# site in its diagnosis.
hang_out="$(mktemp)"
set +e
cargo run --offline --release -q -p akita-rtm-cli --bin rtm-sim -- \
    run --workload fir --faults plans/hang_l2.json --watchdog >"$hang_out" 2>&1
hang_rc=$?
set -e
if [ "$hang_rc" -ne 5 ]; then
    echo "FAIL: expected watchdog stall exit code 5, got $hang_rc" >&2
    cat "$hang_out" >&2
    exit 1
fi
if ! grep -q "injected stuck-full fault" "$hang_out"; then
    echo "FAIL: stall diagnosis never named the injected site" >&2
    cat "$hang_out" >&2
    exit 1
fi
echo "watchdog hang gate OK (exit 5, injected site named)"
rm -f "$hang_out"

echo "==> chrome trace export shape (rtm-sim trace)"
trace_out="$(mktemp -d)/trace.json"
cargo run --offline --release -q -p akita-rtm-cli --bin rtm-sim -- \
    trace --workload fir --out "$trace_out"
python3 - "$trace_out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "no complete spans in the export"
for e in spans:
    for key in ("name", "ts", "dur", "pid", "tid"):
        assert key in e, f"span missing {key}: {e}"
print(f"trace export OK: {len(spans)} spans")
EOF
rm -rf "$(dirname "$trace_out")"

echo "==> OK"
