#!/usr/bin/env bash
# Regenerates every figure harness and stores the outputs under results/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

run() {
  local name="$1"; shift
  echo "=== $name ==="
  "$@" 2>&1 | tee "results/$name.txt"
  echo
}

cargo build -p rtm-bench --bins --release

run fig3 cargo run -q -p rtm-bench --bin fig3_buffer_table --release
run fig4 cargo run -q -p rtm-bench --bin fig4_chain --release
run fig5 cargo run -q -p rtm-bench --bin fig5_case_study1 --release
run fig6 cargo run -q -p rtm-bench --bin fig6_survey --release
run case_study2 cargo run -q -p rtm-bench --bin case_study2_hang --release
run fig7 cargo run -q -p rtm-bench --bin fig7_overhead --release
run bench_engine cargo run -q -p rtm-bench --bin bench_engine --release

echo "all harness outputs written to results/"
